// Fault-injection subsystem: FaultModel/FaultPlan determinism and codec,
// the engine's faulty loop semantics (retry-on-loss, crash-stop stranding,
// Byzantine ghosts and poisoning), the fault-aware meetTime oracle, and
// golden-pinned measureWithFaults statistics at threads 1/2/8.

#include <gtest/gtest.h>

#include <cstdlib>
#include <vector>

#include "algorithms/gathering.hpp"
#include "algorithms/waiting.hpp"
#include "algorithms/waiting_greedy.hpp"
#include "analysis/degradation.hpp"
#include "dynagraph/meet_time_index.hpp"
#include "fault/fault_model.hpp"
#include "fault/fault_oracles.hpp"
#include "sim/fault_experiment.hpp"
#include "test_helpers.hpp"

namespace doda {
namespace {

using core::FaultOutcome;
using core::NodeId;
using core::Time;
using dynagraph::InteractionSequence;
using dynagraph::kNever;
using fault::FaultModel;
using fault::FaultPlan;
using fault::FaultSession;
using fault::LossKind;
using testing::ix;

// ---------------------------------------------------------------- model --

TEST(FaultModel, ValidateRejectsBadProbabilities) {
  FaultModel m = FaultModel::bernoulliLoss(1.5);
  EXPECT_THROW(m.validate(), std::invalid_argument);
  m = FaultModel::bernoulliLoss(-0.1);
  EXPECT_THROW(m.validate(), std::invalid_argument);
  m = FaultModel::byzantine(2.0);
  EXPECT_THROW(m.validate(), std::invalid_argument);
  m = FaultModel::crashStop(0.5, 0);  // fraction without a horizon
  EXPECT_THROW(m.validate(), std::invalid_argument);
  EXPECT_NO_THROW(FaultModel::crashStop(0.5, 100).validate());
  EXPECT_NO_THROW(FaultModel::none().validate());
}

TEST(FaultModel, FaultFreeDetection) {
  EXPECT_TRUE(FaultModel::none().faultFree());
  EXPECT_TRUE(FaultModel::bernoulliLoss(0.0).faultFree());
  EXPECT_FALSE(FaultModel::bernoulliLoss(0.1).faultFree());
  EXPECT_FALSE(FaultModel::crashStop(0.2, 100).faultFree());
  EXPECT_FALSE(FaultModel::byzantine(0.1).faultFree());
  // A GE channel that can never lose anything is fault-free.
  EXPECT_TRUE(FaultModel::gilbertElliott(0.0, 0.5, 0.0, 1.0).faultFree());
  EXPECT_FALSE(FaultModel::gilbertElliott(0.1, 0.5, 0.0, 1.0).faultFree());
}

TEST(FaultPlan, DrawIsDeterministicAndSparesTheSink) {
  FaultModel model = FaultModel::crashStop(0.5, 1000);
  model.byzantine_fraction = 0.3;
  model.loss = LossKind::kBernoulli;
  model.loss_p = 0.25;
  const FaultPlan a = FaultPlan::draw(model, 64, 3, 42);
  const FaultPlan b = FaultPlan::draw(model, 64, 3, 42);
  EXPECT_EQ(a, b);
  const FaultPlan c = FaultPlan::draw(model, 64, 3, 43);
  EXPECT_NE(a, c);

  EXPECT_EQ(a.crash_times[3], kNever);  // the sink never crashes
  EXPECT_EQ(a.byzantine[3], 0);         // and is never Byzantine
  bool any_crash = false, any_byz = false;
  for (NodeId u = 0; u < 64; ++u) {
    if (a.byzantine[u]) {
      any_byz = true;
      // Byzantine nodes never crash — they stay around to do damage.
      EXPECT_EQ(a.crash_times[u], kNever) << "node " << u;
    }
    if (a.crash_times[u] != kNever) {
      any_crash = true;
      EXPECT_LT(a.crash_times[u], 1000u) << "node " << u;
    }
  }
  EXPECT_TRUE(any_crash);
  EXPECT_TRUE(any_byz);
}

TEST(FaultPlan, SerializeParseRoundTrip) {
  FaultModel model = FaultModel::gilbertElliott(0.05, 0.4, 0.01, 0.9);
  model.crash_fraction = 0.25;
  model.crash_horizon = 512;
  model.byzantine_fraction = 0.125;
  const FaultPlan plan = FaultPlan::draw(model, 32, 0, 7);
  const auto bytes = plan.serialize();
  EXPECT_EQ(FaultPlan::parse(bytes), plan);
}

TEST(FaultPlan, ParseRejectsCorruptInput) {
  const FaultPlan plan =
      FaultPlan::draw(FaultModel::bernoulliLoss(0.5), 8, 0, 1);
  auto bytes = plan.serialize();

  EXPECT_THROW(FaultPlan::parse({}), std::runtime_error);

  auto bad_magic = bytes;
  bad_magic[0] ^= 0xff;
  EXPECT_THROW(FaultPlan::parse(bad_magic), std::runtime_error);

  auto truncated = bytes;
  truncated.resize(truncated.size() - 1);
  EXPECT_THROW(FaultPlan::parse(truncated), std::runtime_error);

  auto trailing = bytes;
  trailing.push_back(0);
  EXPECT_THROW(FaultPlan::parse(trailing), std::runtime_error);

  auto bad_kind = bytes;
  bad_kind[4] = 17;
  EXPECT_THROW(FaultPlan::parse(bad_kind), std::runtime_error);

  auto bad_flag = bytes;
  bad_flag.back() = 2;  // Byzantine flag must be 0/1
  EXPECT_THROW(FaultPlan::parse(bad_flag), std::runtime_error);

  auto bad_probability = bytes;
  for (int i = 0; i < 8; ++i) bad_probability[5 + i] = 0xff;  // loss_p = NaN
  EXPECT_THROW(FaultPlan::parse(bad_probability), std::runtime_error);
}

TEST(FaultSession, LossStreamIsReplayedAcrossResets) {
  FaultModel model = FaultModel::bernoulliLoss(0.5);
  FaultSession session(FaultPlan::draw(model, 4, 0, 99));
  const core::SystemInfo info{4, 0};
  std::vector<bool> first;
  session.reset(info);
  for (Time t = 0; t < 64; ++t) {
    session.beginInteraction(t);
    first.push_back(session.transmissionLost(t));
  }
  EXPECT_NE(std::count(first.begin(), first.end(), true), 0);
  EXPECT_NE(std::count(first.begin(), first.end(), false), 0);
  session.reset(info);
  for (Time t = 0; t < 64; ++t) {
    session.beginInteraction(t);
    EXPECT_EQ(session.transmissionLost(t), first[t]) << "t=" << t;
  }
}

TEST(FaultSession, RejectsMismatchedNodeCount) {
  FaultSession session(
      FaultPlan::draw(FaultModel::bernoulliLoss(0.5), 4, 0, 1));
  EXPECT_THROW(session.reset(core::SystemInfo{8, 0}),
               std::invalid_argument);
}

// --------------------------------------------------------------- engine --

/// Hand-scripted injector: loss verdicts by interaction time, explicit
/// crash times and Byzantine flags.
class ScriptedFaults final : public core::FaultInjector {
 public:
  std::vector<Time> crash;
  std::vector<std::uint8_t> byz;
  std::vector<std::uint8_t> lost_at;  // indexed by time, default deliver

  explicit ScriptedFaults(std::size_t n) : crash(n, kNever), byz(n, 0) {}

  void reset(const core::SystemInfo&) override {}
  Time crashTime(NodeId u) const override { return crash[u]; }
  bool isByzantine(NodeId u) const override { return byz[u] != 0; }
  void beginInteraction(Time t) override { now_ = t; }
  bool transmissionLost(Time) override {
    return now_ < lost_at.size() && lost_at[now_] != 0;
  }

 private:
  Time now_ = 0;
};

core::ExecutionResult runFaulty(core::DodaAlgorithm& algorithm,
                                const InteractionSequence& seq,
                                std::size_t n, NodeId sink,
                                core::FaultInjector& faults) {
  core::Engine engine({n, sink}, core::AggregationFunction::count());
  adversary::SequenceAdversary adv(seq);
  core::RunOptions options;
  options.faults = &faults;
  return engine.run(algorithm, adv, options);
}

TEST(FaultyEngine, LostTransmissionRetriesAndCompletes) {
  // t=0: 1->0 lost; t=1: 1->0 retransmitted; t=2: 2->0 delivered.
  algorithms::Waiting waiting;
  ScriptedFaults faults(3);
  faults.lost_at = {1, 0, 0};
  const auto result = runFaulty(
      waiting, InteractionSequence{ix(1, 0), ix(1, 0), ix(2, 0)}, 3, 0,
      faults);
  ASSERT_TRUE(result.fault.has_value());
  const FaultOutcome& fo = *result.fault;
  EXPECT_TRUE(result.terminated);
  EXPECT_TRUE(fo.completed);
  EXPECT_FALSE(fo.blocked);
  EXPECT_EQ(fo.attempted_transmissions, 3u);
  EXPECT_EQ(fo.lost_transmissions, 1u);
  EXPECT_EQ(fo.retransmissions, 1u);
  EXPECT_EQ(fo.honest_total, 3u);
  EXPECT_EQ(fo.delivered_honest, 3u);
  EXPECT_EQ(fo.residual(), 0u);
  EXPECT_EQ(result.interactions_to_terminate, 3u);
  EXPECT_FALSE(fo.sink_poisoned);
}

TEST(FaultyEngine, CrashStrandsDataAndBlocksTheRun) {
  // Node 2 crashes at t=1, before it ever meets the sink.
  algorithms::Waiting waiting;
  ScriptedFaults faults(3);
  faults.crash[2] = 1;
  const auto result = runFaulty(
      waiting, InteractionSequence{ix(1, 0), ix(2, 0), ix(2, 0)}, 3, 0,
      faults);
  ASSERT_TRUE(result.fault.has_value());
  const FaultOutcome& fo = *result.fault;
  EXPECT_FALSE(result.terminated);
  EXPECT_FALSE(fo.completed);
  EXPECT_TRUE(fo.blocked);
  EXPECT_EQ(fo.crash_blocked_interactions, 1u);
  EXPECT_EQ(fo.delivered_honest, 2u);  // sink's own origin + node 1
  EXPECT_EQ(fo.residual(), 1u);
  EXPECT_EQ(fo.stranded_honest, 1u);  // node 2's origin died with it
}

TEST(FaultyEngine, CrashedDataCarriedByLiveNodeIsNotStranded) {
  // Node 2 hands its datum to node 1 at t=0, crashes at t=1; node 1
  // delivers both origins at t=2 — the crash strands nothing.
  algorithms::Gathering gathering;
  ScriptedFaults faults(3);
  faults.crash[2] = 1;
  const auto result = runFaulty(
      gathering, InteractionSequence{ix(2, 1), ix(2, 0), ix(1, 0)}, 3, 0,
      faults);
  ASSERT_TRUE(result.fault.has_value());
  const FaultOutcome& fo = *result.fault;
  EXPECT_TRUE(fo.completed);
  EXPECT_EQ(fo.stranded_honest, 0u);
  EXPECT_EQ(fo.delivered_honest, 3u);
}

TEST(FaultyEngine, ByzantineSenderPoisonsKeepsGhostAndIsRolledBack) {
  // Node 1 is Byzantine. t=0: 1->0 delivers poisoned data but keeps a
  // ghost copy; t=1: the replay 1->0 overlaps the sink's set and is
  // rejected; t=2: 2->0 completes the honest collection.
  algorithms::Waiting waiting;
  ScriptedFaults faults(3);
  faults.byz[1] = 1;
  const auto result = runFaulty(
      waiting, InteractionSequence{ix(1, 0), ix(1, 0), ix(2, 0)}, 3, 0,
      faults);
  ASSERT_TRUE(result.fault.has_value());
  const FaultOutcome& fo = *result.fault;
  EXPECT_TRUE(fo.completed);
  EXPECT_TRUE(fo.sink_poisoned);
  EXPECT_EQ(fo.honest_total, 2u);
  EXPECT_EQ(fo.delivered_honest, 2u);
  EXPECT_EQ(fo.rejected_transfers, 1u);
  EXPECT_EQ(fo.attempted_transmissions, 3u);
  // The terminating transfer is the honest one at t=2.
  EXPECT_EQ(result.interactions_to_terminate, 3u);
}

TEST(FaultyEngine, ByzantineReplayRollbackAtSourceSetCrossover) {
  // The rejected-replay rollback exercised exactly at the SourceSet
  // inline->bitset crossover: the sink's set is rejected-into at exactly
  // kInlineCapacity (8) ids, spills to 9 via an honest transfer, and is
  // rejected-into again just past the boundary. Both rollbacks must
  // leave the set intact and the run must still complete honestly.
  const std::size_t n = 10;
  algorithms::Waiting waiting;
  ScriptedFaults faults(n);
  faults.byz[1] = 1;
  const InteractionSequence seq{
      ix(2, 0), ix(3, 0), ix(4, 0), ix(5, 0), ix(6, 0),
      ix(7, 0),            // sink now holds 7 sources
      ix(1, 0),            // Byzantine delivery: exactly 8, inline-full
      ix(1, 0),            // ghost replay rejected AT the crossover
      ix(8, 0),            // honest: 9 sources, set just spilled
      ix(1, 0),            // ghost replay rejected past the crossover
      ix(9, 0),            // honest: completes the collection
  };
  const auto result = runFaulty(waiting, seq, n, 0, faults);
  ASSERT_TRUE(result.fault.has_value());
  const FaultOutcome& fo = *result.fault;
  EXPECT_TRUE(fo.completed);
  EXPECT_TRUE(fo.sink_poisoned);
  EXPECT_EQ(fo.rejected_transfers, 2u);
  EXPECT_EQ(fo.honest_total, 9u);
  EXPECT_EQ(fo.delivered_honest, 9u);
  EXPECT_EQ(result.interactions_to_terminate, seq.length());
  // Every origin reached the sink exactly once despite the two replays.
  EXPECT_EQ(result.sink_datum.sources.size(), n);
  for (NodeId u = 0; u < n; ++u)
    EXPECT_TRUE(result.sink_datum.sources.contains(u)) << "origin " << u;
}

TEST(FaultyEngine, FaultFreeInjectorMatchesNullInjector) {
  // An injector that faults nothing must produce the exact fault-free
  // schedule (the faulty loop only diverges when a fault fires).
  const InteractionSequence seq{ix(2, 1), ix(1, 0), ix(2, 0), ix(1, 0)};
  algorithms::Gathering gathering;
  const auto clean = testing::runOn(gathering, seq, 3, 0);
  ScriptedFaults faults(3);
  const auto faulted = runFaulty(gathering, seq, 3, 0, faults);
  EXPECT_EQ(faulted.terminated, clean.terminated);
  EXPECT_EQ(faulted.interactions_to_terminate,
            clean.interactions_to_terminate);
  EXPECT_EQ(faulted.last_transmission_time, clean.last_transmission_time);
  ASSERT_TRUE(faulted.fault.has_value());
  EXPECT_EQ(faulted.fault->lost_transmissions, 0u);
  EXPECT_EQ(faulted.fault->rejected_transfers, 0u);
  EXPECT_FALSE(faulted.fault->sink_poisoned);
}

TEST(FaultyEngine, RejectsPlansThatFaultTheSink) {
  algorithms::Waiting waiting;
  const InteractionSequence seq{ix(1, 0)};
  {
    ScriptedFaults faults(2);
    faults.crash[0] = 5;
    EXPECT_THROW(runFaulty(waiting, seq, 2, 0, faults),
                 core::ModelViolation);
  }
  {
    ScriptedFaults faults(2);
    faults.byz[0] = 1;
    EXPECT_THROW(runFaulty(waiting, seq, 2, 0, faults),
                 core::ModelViolation);
  }
}

// --------------------------------------------------------------- oracle --

TEST(FaultyMeetTimeOracle, CrashAwareAndByzantineLies) {
  // Sequence: node 1 meets the sink at t=2, node 2 at t=4.
  const InteractionSequence seq{ix(1, 2), ix(2, 3), ix(1, 0), ix(1, 2),
                                ix(2, 0)};
  dynagraph::MeetTimeIndex index(seq, 0, 4);
  dynagraph::ExactMeetTimeOracle exact(index);

  FaultPlan plan;
  plan.crash_times.assign(4, kNever);
  plan.byzantine.assign(4, 0);
  plan.crash_times[2] = 3;  // node 2 dies before its t=4 sink meeting
  plan.byzantine[3] = 1;
  fault::FaultyMeetTimeOracle oracle(exact, plan);

  EXPECT_EQ(oracle.meetTime(1, 0), exact.meetTime(1, 0));  // honest, alive
  EXPECT_EQ(oracle.meetTime(2, 0), kNever);  // dead by its meeting time
  EXPECT_EQ(oracle.meetTime(3, 7), 8u);      // the Byzantine lie: t + 1
}

// --------------------------------------------------------- degradation --

TEST(Degradation, AccumulatorCountsAndProbability) {
  analysis::DegradationAccumulator acc;
  FaultOutcome completed;
  completed.honest_total = 8;
  completed.delivered_honest = 8;
  completed.completed = true;
  completed.lost_transmissions = 3;
  completed.retransmissions = 2;
  FaultOutcome blocked;
  blocked.honest_total = 8;
  blocked.delivered_honest = 5;
  blocked.stranded_honest = 3;
  blocked.blocked = true;
  blocked.sink_poisoned = true;

  acc.add(completed, 1.5, true);
  acc.add(blocked, 0.0, false);
  EXPECT_EQ(acc.trials(), 2u);
  EXPECT_EQ(acc.completed(), 1u);
  EXPECT_EQ(acc.blocked(), 1u);
  EXPECT_EQ(acc.poisoned(), 1u);
  EXPECT_DOUBLE_EQ(acc.completionProbability(), 0.5);
  EXPECT_GT(acc.completionCi95HalfWidth(), 0.0);
  EXPECT_DOUBLE_EQ(acc.residual().mean(), 1.5);  // (0 + 3) / 2
  EXPECT_DOUBLE_EQ(acc.stranded().mean(), 1.5);
  EXPECT_DOUBLE_EQ(acc.deliveredFraction().mean(), (1.0 + 5.0 / 8.0) / 2);
  EXPECT_EQ(acc.costInflation().count(), 1u);
  EXPECT_DOUBLE_EQ(acc.costInflation().mean(), 1.5);
}

// ------------------------------------------------------------- goldens --

/// Hexfloat-pinned measureWithFaults statistics, checked at threads 1, 2
/// and 8: every faulted measurement must be bit-identical for any thread
/// count (per-trial plans are pre-drawn from the trial seed; outcomes are
/// folded in trial order).
struct FaultGolden {
  std::size_t count;
  double mean, variance, min, max;
  std::size_t trials, completed, blocked, poisoned, timed_out;
  double residual_mean, delivered_fraction_mean, lost_mean, retrans_mean;
  std::size_t inflation_count;
  double inflation_mean, inflation_variance;
};

void expectMatches(const sim::FaultMeasureResult& r, const FaultGolden& g,
                   std::size_t threads) {
  const auto& d = r.degradation;
  EXPECT_EQ(r.interactions.count(), g.count) << "threads=" << threads;
  EXPECT_EQ(r.interactions.mean(), g.mean) << "threads=" << threads;
  EXPECT_EQ(r.interactions.variance(), g.variance) << "threads=" << threads;
  EXPECT_EQ(r.interactions.min(), g.min) << "threads=" << threads;
  EXPECT_EQ(r.interactions.max(), g.max) << "threads=" << threads;
  EXPECT_EQ(d.trials(), g.trials) << "threads=" << threads;
  EXPECT_EQ(d.completed(), g.completed) << "threads=" << threads;
  EXPECT_EQ(d.blocked(), g.blocked) << "threads=" << threads;
  EXPECT_EQ(d.poisoned(), g.poisoned) << "threads=" << threads;
  EXPECT_EQ(r.timed_out_trials, g.timed_out) << "threads=" << threads;
  EXPECT_EQ(d.residual().mean(), g.residual_mean) << "threads=" << threads;
  EXPECT_EQ(d.deliveredFraction().mean(), g.delivered_fraction_mean)
      << "threads=" << threads;
  EXPECT_EQ(d.lost().mean(), g.lost_mean) << "threads=" << threads;
  EXPECT_EQ(d.retransmissions().mean(), g.retrans_mean)
      << "threads=" << threads;
  EXPECT_EQ(d.costInflation().count(), g.inflation_count)
      << "threads=" << threads;
  EXPECT_EQ(d.costInflation().mean(), g.inflation_mean)
      << "threads=" << threads;
  EXPECT_EQ(d.costInflation().variance(), g.inflation_variance)
      << "threads=" << threads;
}

TEST(GoldenFaultStats, BernoulliLossWaiting) {
  const FaultGolden golden{16,
                           0x1.4fap+7,
                           0x1.9866ddddddddfp+12,
                           0x1.78p+6,
                           0x1.acp+8,
                           16,
                           16,
                           0,
                           0,
                           0,
                           0x0p+0,
                           0x1p+0,
                           0x1.38p+1,
                           0x1.ep+0,
                           16,
                           0x1.b6f636b6cfaf6p+2,
                           0x1.c8e1f9b604987p+2};
  for (std::size_t threads : {1u, 2u, 8u}) {
    sim::MeasureConfig config;
    config.node_count = 10;
    config.trials = 16;
    config.seed = 2026;
    config.threads = threads;
    config.faults = FaultModel::bernoulliLoss(0.2);
    const auto r = sim::measureWithFaults(
        config, 256, [](sim::TrialContext&) {
          return std::make_unique<algorithms::Waiting>();
        });
    expectMatches(r, golden, threads);
  }
}

TEST(GoldenFaultStats, MixedFaultsWaitingGreedy) {
  // Gilbert–Elliott bursts + crash-stop + Byzantine, with WaitingGreedy on
  // the fault-aware oracle: under the v2 seed format every trial completes
  // but several poisoned aggregates reach the sink.
  const FaultGolden golden{16,
                           0x1.ac6p+7,
                           0x1.af67555555556p+11,
                           0x1.4ap+7,
                           0x1.69p+8,
                           16,
                           16,
                           0,
                           6,
                           0,
                           0x0p+0,
                           0x1p+0,
                           0x1.b000000000001p+0,
                           0x1.7ffffffffffffp+0,
                           16,
                           0x1.c5291fb69c222p+2,
                           0x1.321cf7295f52ap+3};
  for (std::size_t threads : {1u, 2u, 8u}) {
    sim::MeasureConfig config;
    config.node_count = 12;
    config.trials = 16;
    config.seed = 7;
    config.threads = threads;
    config.faults = FaultModel::gilbertElliott(0.1, 0.5, 0.02, 0.8);
    config.faults.crash_fraction = 0.15;
    config.faults.crash_horizon = 400;
    config.faults.byzantine_fraction = 0.1;
    const auto r = sim::measureWithFaults(
        config, 256, [](sim::TrialContext& ctx) {
          return std::make_unique<algorithms::WaitingGreedy>(*ctx.oracle,
                                                             180);
        });
    expectMatches(r, golden, threads);
  }
}

TEST(GoldenFaultStats, CrashStopGathering) {
  const FaultGolden golden{10,
                           0x1.2e66666666667p+6,
                           0x1.d511111111112p+10,
                           0x1.7p+4,
                           0x1.2p+7,
                           12,
                           10,
                           2,
                           0,
                           0,
                           0x1.2aaaaaaaaaaabp-1,
                           0x1.e222222222222p-1,
                           0x0p+0,
                           0x0p+0,
                           10,
                           0x1.5b1737ac1324cp+1,
                           0x1.0c05ac9c272a4p+1};
  for (std::size_t threads : {1u, 2u, 8u}) {
    sim::MeasureConfig config;
    config.node_count = 10;
    config.trials = 12;
    config.seed = 99;
    config.threads = threads;
    config.faults = FaultModel::crashStop(0.3, 200);
    const auto r = sim::measureWithFaults(
        config, 128, [](sim::TrialContext&) {
          return std::make_unique<algorithms::Gathering>();
        });
    expectMatches(r, golden, threads);
  }
}

TEST(GoldenFaultStats, LegacySeedFormatV1Pinned) {
  // The pre-v2 BernoulliLossWaiting golden, reproduced via the explicit
  // SeedFormat::v1 knob: fault plans draw from the same trial seed, so a
  // legacy faulted experiment replays bit-exactly under the pin.
  const FaultGolden golden{16,
                           0x1.384p+7,
                           0x1.45ee666666664p+11,
                           0x1.24p+6,
                           0x1.bep+7,
                           16,
                           16,
                           0,
                           0,
                           0,
                           0x0p+0,
                           0x1p+0,
                           0x1.dp+0,
                           0x1.8fffffffffffep+0,
                           16,
                           0x1.7f0f74c394ab5p+2,
                           0x1.b0f9ca5c426cfp+2};
  for (std::size_t threads : {1u, 8u}) {
    sim::MeasureConfig config;
    config.node_count = 10;
    config.trials = 16;
    config.seed = 2026;
    config.threads = threads;
    config.seed_format = dynagraph::traces::SeedFormat::v1;
    config.faults = FaultModel::bernoulliLoss(0.2);
    const auto r = sim::measureWithFaults(
        config, 256, [](sim::TrialContext&) {
          return std::make_unique<algorithms::Waiting>();
        });
    expectMatches(r, golden, threads);
  }
}

TEST(FaultSweep, MeasureUnderFaultsKeepsLabelsAndSeverityOrder) {
  const std::vector<sim::FaultSweepPoint> sweep = {
      {"none", FaultModel::none()},
      {"loss10", FaultModel::bernoulliLoss(0.10)},
      {"loss40", FaultModel::bernoulliLoss(0.40)},
  };
  sim::MeasureConfig config;
  config.node_count = 8;
  config.trials = 12;
  config.seed = 11;
  config.threads = 2;
  const auto curve = sim::measureUnderFaults(
      config, 128, sweep, [](sim::TrialContext&) {
        return std::make_unique<algorithms::Waiting>();
      });
  ASSERT_EQ(curve.size(), 3u);
  EXPECT_EQ(curve[0].label, "none");
  EXPECT_EQ(curve[2].label, "loss40");
  // The fault-free point completes every trial with no losses.
  EXPECT_EQ(curve[0].result.degradation.completed(), 12u);
  EXPECT_EQ(curve[0].result.degradation.lost().mean(), 0.0);
  // Heavier loss costs strictly more interactions on average.
  EXPECT_GT(curve[2].result.interactions.mean(),
            curve[0].result.interactions.mean());
  EXPECT_GT(curve[2].result.degradation.lost().mean(),
            curve[1].result.degradation.lost().mean());
}

TEST(FaultMatrix, LossCrashByzantineCrossProductSmoke) {
  // The full 2x2x2 severity cross-product at small n — the CI Debug+ASan
  // fault-matrix leg drives exactly this test. Every combination must
  // measure cleanly, satisfy the accounting invariants, and be
  // bit-identical serial vs pooled.
  for (const double loss : {0.0, 0.2}) {
    for (const double crash : {0.0, 0.3}) {
      for (const double byz : {0.0, 0.2}) {
        FaultModel model;
        if (loss > 0.0) model = FaultModel::bernoulliLoss(loss);
        if (crash > 0.0) {
          model.crash_fraction = crash;
          model.crash_horizon = 300;
        }
        model.byzantine_fraction = byz;
        sim::MeasureConfig config;
        config.node_count = 10;
        config.trials = 8;
        config.seed = 0x3a7'0000 + static_cast<std::uint64_t>(
            loss * 100 + crash * 10000 + byz * 1000000);
        config.threads = 1;
        config.faults = model;
        const auto factory = [](sim::TrialContext&) {
          return std::make_unique<algorithms::Waiting>();
        };
        const auto serial = sim::measureWithFaults(config, 256, factory);
        const auto& d = serial.degradation;
        const std::string tag = "loss=" + std::to_string(loss) +
                                " crash=" + std::to_string(crash) +
                                " byz=" + std::to_string(byz);
        EXPECT_EQ(d.trials(), config.trials) << tag;
        EXPECT_LE(d.completed() + d.blocked() + serial.timed_out_trials,
                  config.trials)
            << tag;
        if (model.faultFree()) {
          EXPECT_EQ(d.completed(), config.trials) << tag;
        }
        if (crash == 0.0) {
          EXPECT_EQ(d.blocked(), 0u) << tag;  // only crashes strand data
        }
        config.threads = 2;
        const auto pooled = sim::measureWithFaults(config, 256, factory);
        EXPECT_EQ(pooled.interactions.count(), serial.interactions.count())
            << tag;
        EXPECT_EQ(pooled.interactions.mean(), serial.interactions.mean())
            << tag;
        EXPECT_EQ(pooled.degradation.completed(), d.completed()) << tag;
        EXPECT_EQ(pooled.degradation.residual().mean(), d.residual().mean())
            << tag;
      }
    }
  }
}

// ----------------------------------------------------------------- fuzz --

TEST(FaultPlanFuzz, MutatedPlansParseCleanlyOrRoundTrip) {
  // Randomized robustness sweep over the FaultPlan codec: mutate a few
  // bytes of a valid serialized plan, then parse. Every outcome must be a
  // clean std::runtime_error or a plan whose fields are internally
  // consistent and whose re-serialization parses back equal — never a
  // crash, hang, or sanitizer finding (the ASan+UBSan CI job runs this
  // with DODA_FUZZ_ITERS scaled up).
  FaultModel model = FaultModel::gilbertElliott(0.1, 0.4, 0.02, 0.8);
  model.crash_fraction = 0.25;
  model.crash_horizon = 500;
  model.byzantine_fraction = 0.2;
  const auto pristine = FaultPlan::draw(model, 24, 0, 0xbeef).serialize();

  std::size_t iterations = 256;
  if (const char* env = std::getenv("DODA_FUZZ_ITERS"))
    iterations = std::strtoull(env, nullptr, 10);

  util::Rng rng(0xfa117);
  std::size_t rejected = 0;
  for (std::size_t iter = 0; iter < iterations; ++iter) {
    auto bytes = pristine;
    const std::size_t mutations = 1 + rng.below(4);
    for (std::size_t m = 0; m < mutations; ++m) {
      const std::size_t pos = rng.below(bytes.size());
      bytes[pos] ^= static_cast<std::uint8_t>(1 + rng.below(255));
    }
    // Occasionally truncate or extend as well.
    if (rng.chance(0.25)) bytes.resize(rng.below(bytes.size() + 1));
    if (rng.chance(0.10)) bytes.push_back(static_cast<std::uint8_t>(rng()));
    try {
      const auto plan = FaultPlan::parse(bytes);
      ASSERT_EQ(plan.crash_times.size(), plan.byzantine.size());
      ASSERT_GE(plan.nodeCount(), 2u);
      for (std::size_t u = 0; u < plan.nodeCount(); ++u) {
        ASSERT_LE(plan.byzantine[u], 1);
        if (plan.byzantine[u]) {
          ASSERT_EQ(plan.crash_times[u], kNever);
        }
      }
      EXPECT_EQ(FaultPlan::parse(plan.serialize()), plan);
    } catch (const std::runtime_error&) {
      ++rejected;  // clean rejection is the expected common case
    }
  }
  EXPECT_GT(rejected, 0u);
}

}  // namespace
}  // namespace doda
