// Tests of the v3 trace container (dynagraph/trace_io + trace_rans):
// static-table interleaved-rANS round-trips, the per-shard block-index
// footer (structure, corruption, index/payload mismatch), random access
// (seekToTrial / seekToBlock on both backends, sequential fallback on
// v1/v2), ranged replay bit-identity against a full replay, mixed-codec
// stores, the incremental writer API, the streaming two-pass importer,
// and a randomized indexed-seek fuzz (DODA_FUZZ_ITERS-scalable).

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "algorithms/gathering.hpp"
#include "dynagraph/trace_import.hpp"
#include "dynagraph/trace_io.hpp"
#include "dynagraph/traces.hpp"
#include "sim/trace_replay.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace doda {
namespace {

using dynagraph::Interaction;
using dynagraph::InteractionSequence;
using dynagraph::TraceReadBackend;
using dynagraph::TraceShardReader;
using dynagraph::TraceStore;
using dynagraph::TraceStoreWriter;
using dynagraph::TraceWriterOptions;
using sim::MeasureResult;
using sim::ReplayTrialRange;

std::string scratchDir(const std::string& tag) {
  static int counter = 0;
  const auto dir = std::filesystem::path(testing::TempDir()) /
                   ("doda_trace_v3_" + tag + "_" + std::to_string(::getpid()) +
                    "_" + std::to_string(counter++));
  std::filesystem::remove_all(dir);
  return dir.string();
}

TraceWriterOptions versionOptions(std::uint16_t version) {
  TraceWriterOptions options;
  options.format_version = version;
  return options;
}

std::vector<InteractionSequence> sampleTrials(std::size_t n,
                                              std::size_t count,
                                              core::Time length,
                                              std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<InteractionSequence> trials;
  trials.reserve(count);
  for (std::size_t i = 0; i < count; ++i)
    trials.push_back(dynagraph::traces::uniformRandom(n, length, rng));
  return trials;
}

void writeStore(const std::string& dir, std::size_t n,
                const std::vector<InteractionSequence>& trials,
                std::uint32_t shards, const TraceWriterOptions& options) {
  TraceStoreWriter writer(dir, n, trials.size(), shards, options);
  for (const auto& trial : trials) writer.appendTrial(trial);
  writer.finish();
}

std::vector<InteractionSequence> decodeStore(const TraceStore& store,
                                             TraceReadBackend backend) {
  std::vector<InteractionSequence> trials;
  for (std::size_t s = 0; s < store.shardCount(); ++s) {
    auto reader = store.openShard(s, backend);
    while (reader.beginTrial()) trials.push_back(reader.readRest());
  }
  return trials;
}

std::vector<char> readFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<char>((std::istreambuf_iterator<char>(in)),
                           std::istreambuf_iterator<char>());
}

void writeFile(const std::string& path, const std::vector<char>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

std::uint64_t fnv1a(const unsigned char* data, std::size_t size) {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (std::size_t i = 0; i < size; ++i) {
    hash ^= data[i];
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

void expectIdentical(const MeasureResult& a, const MeasureResult& b) {
  EXPECT_EQ(a.interactions.count(), b.interactions.count());
  EXPECT_EQ(a.interactions.mean(), b.interactions.mean());
  EXPECT_EQ(a.interactions.variance(), b.interactions.variance());
  EXPECT_EQ(a.cost.count(), b.cost.count());
  EXPECT_EQ(a.cost.mean(), b.cost.mean());
  EXPECT_EQ(a.cost.variance(), b.cost.variance());
  EXPECT_EQ(a.failed_trials, b.failed_trials);
}

// ------------------------------------------------------------- round trip

TEST(TraceV3RoundTrip, DefaultStoreIsV4AndPreservesEveryTrial) {
  const auto trials = sampleTrials(24, 6, 3000, 99);
  const std::string dir_v3 = scratchDir("rt_v3");
  const std::string dir_v1 = scratchDir("rt_v1");
  writeStore(dir_v3, 24, trials, 3, TraceWriterOptions{});
  writeStore(dir_v1, 24, trials, 3,
             versionOptions(dynagraph::kTraceFormatVersionV1));

  const auto store = TraceStore::open(dir_v3);
  EXPECT_EQ(store.formatVersion(), dynagraph::kTraceFormatVersion);
  EXPECT_EQ(store.trialCount(), trials.size());
  for (const auto backend :
       {TraceReadBackend::kAuto, TraceReadBackend::kStream}) {
    const auto decoded = decodeStore(store, backend);
    ASSERT_EQ(decoded.size(), trials.size());
    for (std::size_t i = 0; i < trials.size(); ++i)
      EXPECT_EQ(decoded[i], trials[i]) << "trial " << i;
  }

  // Compressed v3 beats the raw v1 stream even with the index footer.
  const auto v1 = TraceStore::open(dir_v1);
  EXPECT_LT(store.totalFileBytes(), v1.totalFileBytes());
}

TEST(TraceV3RoundTrip, TinyBlocksAlignToRecordUnits) {
  // Minimum block size: blocks must never split a record unit, so every
  // block boundary stays describable by the index cursor.
  TraceWriterOptions options;
  options.block_bytes = 16;
  const auto trials = sampleTrials(200, 4, 700, 5);
  const std::string dir = scratchDir("tiny_blocks");
  writeStore(dir, 200, trials, 2, options);
  const auto store = TraceStore::open(dir);
  const auto decoded = decodeStore(store, TraceReadBackend::kAuto);
  ASSERT_EQ(decoded.size(), trials.size());
  for (std::size_t i = 0; i < trials.size(); ++i)
    EXPECT_EQ(decoded[i], trials[i]) << "trial " << i;
}

TEST(TraceV3RoundTrip, UncompressedStoreRoundTripsWithIndex) {
  TraceWriterOptions options;
  options.compress = false;
  const auto trials = sampleTrials(24, 5, 800, 7);
  const std::string dir = scratchDir("raw_blocks");
  writeStore(dir, 24, trials, 2, options);
  const auto store = TraceStore::open(dir);
  EXPECT_EQ(store.shardHeaders()[0].codec, dynagraph::kTraceCodecRaw);
  auto reader = store.openShard(0);
  EXPECT_TRUE(reader.hasBlockIndex());
  const auto decoded = decodeStore(store, TraceReadBackend::kAuto);
  ASSERT_EQ(decoded.size(), trials.size());
  for (std::size_t i = 0; i < trials.size(); ++i)
    EXPECT_EQ(decoded[i], trials[i]) << "trial " << i;
}

TEST(TraceV3RoundTrip, EmptyAndSingleInteractionTrials) {
  std::vector<InteractionSequence> trials;
  trials.push_back(InteractionSequence{});
  trials.push_back(InteractionSequence{Interaction(0, 1)});
  trials.push_back(InteractionSequence{});
  const std::string dir = scratchDir("degenerate");
  writeStore(dir, 4, trials, 1, TraceWriterOptions{});
  const auto store = TraceStore::open(dir);
  const auto decoded = decodeStore(store, TraceReadBackend::kAuto);
  ASSERT_EQ(decoded.size(), trials.size());
  for (std::size_t i = 0; i < trials.size(); ++i)
    EXPECT_EQ(decoded[i], trials[i]);
  // Empty trials are seekable too.
  auto reader = store.openShard(0);
  ASSERT_TRUE(reader.seekToTrial(2));
  ASSERT_TRUE(reader.beginTrial());
  EXPECT_EQ(reader.trialLength(), 0u);
}

TEST(TraceV3RoundTrip, IncrementalWriterMatchesAppendTrial) {
  // beginTrial/addInteraction (the streaming-import path) must produce a
  // byte-identical shard to the materialized appendTrial path.
  const auto trials = sampleTrials(32, 4, 600, 17);
  const std::string dir_a = scratchDir("inc_a");
  const std::string dir_b = scratchDir("inc_b");
  writeStore(dir_a, 32, trials, 2, TraceWriterOptions{});
  {
    TraceStoreWriter writer(dir_b, 32, trials.size(), 2,
                            TraceWriterOptions{});
    for (const auto& trial : trials) {
      writer.beginTrial(trial.length());
      for (core::Time t = 0; t < trial.length(); ++t)
        writer.addInteraction(trial.at(t));
    }
    writer.finish();
  }
  for (std::uint32_t shard = 0; shard < 2; ++shard) {
    const auto name = dynagraph::traceShardFileName(shard);
    EXPECT_EQ(readFile((std::filesystem::path(dir_a) / name).string()),
              readFile((std::filesystem::path(dir_b) / name).string()))
        << "shard " << shard;
  }
}

TEST(TraceV3RoundTrip, IncrementalWriterRejectsProtocolErrors) {
  const std::string dir = scratchDir("inc_err");
  TraceStoreWriter writer(dir, 8, 2, 1, TraceWriterOptions{});
  EXPECT_THROW(writer.addInteraction(Interaction(0, 1)), std::logic_error);
  writer.beginTrial(2);
  EXPECT_THROW(writer.beginTrial(1), std::logic_error);
  EXPECT_THROW(writer.addInteraction(Interaction(0, 9)),
               std::invalid_argument);  // endpoint >= node_count
  writer.addInteraction(Interaction(0, 1));
  writer.addInteraction(Interaction(1, 2));
  // The first trial is complete but the second never arrives.
  EXPECT_THROW(writer.finish(), std::logic_error);
}

// ------------------------------------------------------------ block index

TEST(TraceV3Index, EntriesDescribeThePayloadExactly) {
  TraceWriterOptions options;
  options.block_bytes = 512;  // many blocks
  const auto trials = sampleTrials(48, 6, 800, 23);
  const std::string dir = scratchDir("index_shape");
  writeStore(dir, 48, trials, 2, options);
  const auto store = TraceStore::open(dir);
  for (std::size_t s = 0; s < store.shardCount(); ++s) {
    auto reader = store.openShard(s);
    ASSERT_TRUE(reader.hasBlockIndex());
    const auto& index = reader.blockIndex();
    ASSERT_GT(index.size(), 1u);
    const auto& header = reader.header();
    std::uint64_t offset = header.headerSize();
    std::uint64_t raw = 0;
    std::uint64_t trials_begun = 0;
    for (const auto& entry : index) {
      EXPECT_EQ(entry.offset, offset);
      EXPECT_EQ(entry.raw_start, raw);
      EXPECT_GE(entry.trials_begun, trials_begun);
      EXPECT_LE(entry.decoded, entry.trial_length);
      offset += dynagraph::kTraceBlockFrameBytes + entry.stored_size;
      raw += entry.raw_size;
      trials_begun = entry.trials_begun;
    }
    EXPECT_EQ(offset, header.headerSize() + header.payload_bytes);
    EXPECT_EQ(raw, header.raw_payload_bytes);
  }
}

TEST(TraceV3Index, OlderFormatsHaveNoIndexAndSeekFallsBack) {
  const auto trials = sampleTrials(20, 6, 400, 29);
  for (const std::uint16_t version :
       {dynagraph::kTraceFormatVersionV1, dynagraph::kTraceFormatVersionV2}) {
    const std::string dir = scratchDir("no_index_v" + std::to_string(version));
    writeStore(dir, 20, trials, 2, versionOptions(version));
    const auto store = TraceStore::open(dir);
    auto reader = store.openShard(0);
    EXPECT_FALSE(reader.hasBlockIndex());
    EXPECT_THROW(reader.seekToBlock(0), std::out_of_range);
    // Forward fallback: sequential skip positions exactly like the index.
    const std::uint64_t count = reader.header().trial_count;
    ASSERT_GE(count, 2u);
    ASSERT_TRUE(reader.seekToTrial(count - 1));
    ASSERT_TRUE(reader.beginTrial());
    EXPECT_EQ(reader.readRest(), trials[static_cast<std::size_t>(count - 1)]);
    // Backward needs an index.
    EXPECT_THROW(reader.seekToTrial(0), std::runtime_error);
  }
}

TEST(TraceV3Index, SeekToEveryTrialMatchesSequentialDecode) {
  TraceWriterOptions options;
  options.block_bytes = 256;  // trials straddle many blocks
  const auto trials = sampleTrials(40, 10, 300, 31);
  const std::string dir = scratchDir("seek_all");
  writeStore(dir, 40, trials, 3, options);
  const auto store = TraceStore::open(dir);
  for (const auto backend :
       {TraceReadBackend::kAuto, TraceReadBackend::kStream}) {
    for (std::uint64_t g = 0; g < store.trialCount(); ++g) {
      bool found = false;
      for (std::size_t s = 0; s < store.shardCount() && !found; ++s) {
        auto reader = store.openShard(s, backend);
        if (!reader.seekToTrial(g)) continue;
        ASSERT_TRUE(reader.beginTrial());
        EXPECT_EQ(reader.readRest(), trials[static_cast<std::size_t>(g)])
            << "trial " << g;
        found = true;
      }
      EXPECT_TRUE(found) << "trial " << g << " not found in any shard";
    }
    // Backward seeks work on one open reader (the index rewinds).
    auto reader = store.openShard(0, backend);
    const std::uint64_t in_shard = reader.header().trial_count;
    ASSERT_TRUE(reader.seekToTrial(in_shard - 1));
    ASSERT_TRUE(reader.seekToTrial(0));
    ASSERT_TRUE(reader.beginTrial());
    EXPECT_EQ(reader.readRest(), trials[0]);
  }
}

TEST(TraceV3Index, SeekToBlockResumesFromEveryBlock) {
  TraceWriterOptions options;
  options.block_bytes = 256;
  const auto trials = sampleTrials(40, 4, 500, 37);
  const std::string dir = scratchDir("seek_block");
  writeStore(dir, 40, trials, 1, options);
  const auto store = TraceStore::open(dir);
  const std::size_t blocks = store.openShard(0).blockIndex().size();
  ASSERT_GT(blocks, 2u);
  for (const auto backend :
       {TraceReadBackend::kAuto, TraceReadBackend::kStream}) {
    for (std::size_t k = 0; k < blocks; ++k) {
      auto reader = store.openShard(0, backend);
      reader.seekToBlock(k);
      // Decoding to the end from any block must terminate cleanly with
      // the end-of-shard accounting intact.
      while (reader.beginTrial()) reader.skipRest();
      EXPECT_EQ(reader.trialsBegun(), reader.header().trial_count);
    }
    auto reader = store.openShard(0, backend);
    EXPECT_THROW(reader.seekToBlock(blocks), std::out_of_range);
  }
}

// ----------------------------------------------------------- ranged replay

TEST(TraceV3RangedReplay, WindowStatsMatchFoldedFullReplay) {
  // The acceptance contract: replaying trials [a, b) produces Stats
  // bit-identical to folding the same trials out of a full replay — on
  // every format, both backends, threads 1/2/8.
  sim::MeasureConfig config;
  config.node_count = 12;
  config.trials = 30;
  config.seed = 20260728;
  const core::Time length = 1024;

  const std::string dir_v1 = scratchDir("ranged_v1");
  const std::string dir_v2 = scratchDir("ranged_v2");
  const std::string dir_v3 = scratchDir("ranged_v3");
  sim::recordSynthetic(dir_v1, config, length, 4,
                       versionOptions(dynagraph::kTraceFormatVersionV1));
  sim::recordSynthetic(dir_v2, config, length, 4,
                       versionOptions(dynagraph::kTraceFormatVersionV2));
  sim::recordSynthetic(dir_v3, config, length, 4);

  const auto body = [](std::size_t global, TraceShardReader& reader,
                       core::Engine::Scratch&) {
    sim::TrialOutcome outcome;
    outcome.success = true;
    // A deterministic trial-dependent value with a fractional part, so a
    // wrong fold order or a misaligned window shows up in mean/variance.
    outcome.interactions =
        static_cast<double>(reader.trialLength()) / 3.0 +
        static_cast<double>(global) * 7.0;
    reader.skipRest();
    return outcome;
  };

  const auto store_v3 = TraceStore::open(dir_v3);
  const auto full = sim::replayShards(store_v3, 1, body);
  ASSERT_EQ(full.interactions.count(), config.trials);

  // Reference: fold the window's outcomes out of a full replay.
  const ReplayTrialRange window{7, 23};
  std::vector<sim::TrialOutcome> outcomes(config.trials);
  sim::replayShards(store_v3, 1,
                    [&](std::size_t global, TraceShardReader& reader,
                        core::Engine::Scratch& scratch) {
                      const auto outcome = body(global, reader, scratch);
                      outcomes[global] = outcome;
                      return outcome;
                    });
  MeasureResult folded;
  for (std::uint64_t g = window.first; g < window.last; ++g)
    foldOutcome(folded, outcomes[static_cast<std::size_t>(g)]);

  for (const std::string& dir : {dir_v1, dir_v2, dir_v3}) {
    const auto store = TraceStore::open(dir);
    for (const auto backend :
         {TraceReadBackend::kAuto, TraceReadBackend::kStream}) {
      for (const std::size_t threads : {1u, 2u, 8u}) {
        const auto ranged =
            sim::replayShards(store, threads, body, backend, window);
        expectIdentical(folded, ranged);
      }
    }
  }

  // Degenerate windows.
  expectIdentical(full,
                  sim::replayShards(store_v3, 2, body,
                                    TraceReadBackend::kAuto,
                                    ReplayTrialRange{0, ~std::uint64_t{0}}));
  const auto empty = sim::replayShards(store_v3, 2, body,
                                       TraceReadBackend::kAuto,
                                       ReplayTrialRange{9, 9});
  EXPECT_EQ(empty.interactions.count(), 0u);
  EXPECT_EQ(empty.failed_trials, 0u);
}

TEST(TraceV3RangedReplay, EngineReplayHonorsTrialRange) {
  // End to end through the real engine: a ranged streamed replay equals
  // the fold of the same trials' outcomes from a full streamed replay.
  sim::MeasureConfig config;
  config.node_count = 10;
  config.trials = 18;
  config.seed = 424242;
  const std::string dir = scratchDir("ranged_engine");
  sim::recordSynthetic(dir, config, 2048, 3);
  const auto store = TraceStore::open(dir);

  const auto factory = [](const core::SystemInfo&) {
    return std::make_unique<algorithms::Gathering>();
  };
  sim::ReplayConfig full_cfg;
  full_cfg.threads = 1;
  // Capture per-trial outcomes of the full replay via the executor body
  // (replayTraceStreaming folds them; re-derive the window's fold).
  std::vector<double> interactions(config.trials, -1.0);
  sim::replayShards(
      store, 1,
      [&](std::size_t global, TraceShardReader& reader,
          core::Engine::Scratch& scratch) {
        sim::ReplayConfig one;
        one.threads = 1;
        one.trial_range = {global, global + 1};
        (void)scratch;
        sim::TrialOutcome outcome;
        // Run the engine exactly like replayTraceStreaming's body.
        core::SystemInfo info{store.nodeCount(), 0};
        auto algorithm = factory(info);
        core::Engine engine(info, core::AggregationFunction::count());
        class Stream final : public core::Adversary {
         public:
          explicit Stream(TraceShardReader& r) : r_(r) {}
          std::string name() const override { return "s"; }
          std::optional<core::Interaction> next(
              core::Time, const core::ExecutionView&) override {
            return r_.next();
          }

         private:
          TraceShardReader& r_;
        } adversary(reader);
        core::RunOptions options;
        options.max_interactions = reader.trialLength();
        options.capture_schedule = false;
        const auto result =
            engine.runInto(scratch, *algorithm, adversary, options);
        outcome.success = result.terminated;
        outcome.interactions =
            result.terminated
                ? static_cast<double>(result.interactions_to_terminate)
                : 0.0;
        interactions[global] = outcome.interactions;
        return outcome;
      });

  sim::ReplayConfig ranged_cfg;
  ranged_cfg.trial_range = {5, 14};
  for (const std::size_t threads : {1u, 2u, 8u}) {
    ranged_cfg.threads = threads;
    const auto ranged = replayTraceStreaming(store, ranged_cfg, factory);
    MeasureResult folded;
    for (std::uint64_t g = 5; g < 14; ++g) {
      sim::TrialOutcome outcome;
      outcome.success = true;
      outcome.interactions = interactions[static_cast<std::size_t>(g)];
      foldOutcome(folded, outcome);
    }
    expectIdentical(folded, ranged);
  }
}

// ------------------------------------------------------------- mixed codec

TEST(TraceV3MixedCodec, IncompressibleBlocksFallBackToRawWithinAShard) {
  // Tiny blocks make the per-block tables dominate, forcing raw fallback
  // on some blocks while others stay rANS — the shard must mix codecs and
  // still decode identically.
  TraceWriterOptions options;
  options.block_bytes = 48;
  const auto trials = sampleTrials(180, 3, 400, 41);
  const std::string dir = scratchDir("mixed_blocks");
  writeStore(dir, 180, trials, 1, options);
  const auto store = TraceStore::open(dir);
  auto reader = store.openShard(0);
  const auto shard_path = store.shardPath(0);
  const auto bytes = readFile(shard_path);
  std::set<std::uint8_t> codecs;
  for (const auto& entry : reader.blockIndex())
    codecs.insert(static_cast<std::uint8_t>(
        bytes[static_cast<std::size_t>(entry.offset) + 8]));
  EXPECT_TRUE(codecs.count(static_cast<std::uint8_t>(
      dynagraph::kTraceCodecRaw)))
      << "expected at least one raw-fallback block";
  const auto decoded = decodeStore(store, TraceReadBackend::kAuto);
  ASSERT_EQ(decoded.size(), trials.size());
  for (std::size_t i = 0; i < trials.size(); ++i)
    EXPECT_EQ(decoded[i], trials[i]);
}

TEST(TraceV3MixedCodec, StoreMayMixRawAndRansShards) {
  // Shards are self-describing: a store whose shards disagree on codec
  // (e.g. a re-compressed shard next to a raw one) still decodes — only
  // the format *version* must agree across shards.
  const auto trials = sampleTrials(24, 6, 500, 43);
  const std::string dir_rans = scratchDir("mix_rans");
  const std::string dir_raw = scratchDir("mix_raw");
  writeStore(dir_rans, 24, trials, 2, TraceWriterOptions{});
  TraceWriterOptions raw;
  raw.compress = false;
  writeStore(dir_raw, 24, trials, 2, raw);
  std::filesystem::copy_file(
      std::filesystem::path(dir_raw) / dynagraph::traceShardFileName(1),
      std::filesystem::path(dir_rans) / dynagraph::traceShardFileName(1),
      std::filesystem::copy_options::overwrite_existing);
  const auto store = TraceStore::open(dir_rans);
  EXPECT_EQ(store.shardHeaders()[0].codec, dynagraph::kTraceCodecRansV4);
  EXPECT_EQ(store.shardHeaders()[1].codec, dynagraph::kTraceCodecRaw);
  const auto decoded = decodeStore(store, TraceReadBackend::kAuto);
  ASSERT_EQ(decoded.size(), trials.size());
  for (std::size_t i = 0; i < trials.size(); ++i)
    EXPECT_EQ(decoded[i], trials[i]);
}

TEST(TraceV3MixedCodec, MixedVersionStoreIsStillRejected) {
  const auto trials = sampleTrials(16, 4, 200, 3);
  const std::string dir_v2 = scratchDir("franken_v2");
  const std::string dir_v3 = scratchDir("franken_v3");
  writeStore(dir_v2, 16, trials, 2,
             versionOptions(dynagraph::kTraceFormatVersionV2));
  writeStore(dir_v3, 16, trials, 2, TraceWriterOptions{});
  std::filesystem::copy_file(
      std::filesystem::path(dir_v2) / dynagraph::traceShardFileName(1),
      std::filesystem::path(dir_v3) / dynagraph::traceShardFileName(1),
      std::filesystem::copy_options::overwrite_existing);
  EXPECT_THROW(TraceStore::open(dir_v3), std::runtime_error);
}

// ------------------------------------------------------- footer corruption

class TraceV3FooterCorruption : public testing::Test {
 protected:
  void SetUp() override {
    dir_ = scratchDir("footer");
    TraceWriterOptions options;
    options.block_bytes = 512;
    const auto trials = sampleTrials(24, 4, 500, 47);
    writeStore(dir_, 24, trials, 1, options);
    shard0_ = (std::filesystem::path(dir_) /
               dynagraph::traceShardFileName(0))
                  .string();
    pristine_ = readFile(shard0_);
    footer_bytes_ = loadU32(68);
    ASSERT_GE(footer_bytes_, dynagraph::kTraceIndexFixedBytes +
                                 dynagraph::kTraceIndexEntryBytes);
    footer_start_ = pristine_.size() - footer_bytes_;
  }

  std::uint32_t loadU32(std::size_t at) const {
    std::uint32_t value = 0;
    for (int i = 0; i < 4; ++i)
      value |= static_cast<std::uint32_t>(static_cast<unsigned char>(
                   pristine_[at + static_cast<std::size_t>(i)]))
               << (8 * i);
    return value;
  }

  /// Re-seals the footer checksum after an intentional index edit, so the
  /// structural validation (not the checksum) must catch the mismatch.
  static void resealFooter(std::vector<char>& bytes,
                           std::size_t footer_start) {
    auto* data = reinterpret_cast<unsigned char*>(bytes.data());
    const std::size_t size = bytes.size() - footer_start - 8;
    const std::uint64_t checksum = fnv1a(data + footer_start, size);
    for (int i = 0; i < 8; ++i)
      data[bytes.size() - 8 + static_cast<std::size_t>(i)] =
          static_cast<unsigned char>(checksum >> (8 * i));
  }

  void expectOpenFailure(const std::string& what, TraceReadBackend backend) {
    try {
      TraceShardReader reader(shard0_, dynagraph::kTraceBlockBytes, backend);
      FAIL() << "open succeeded on " << what;
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find(what), std::string::npos)
          << "actual: " << e.what();
    }
  }

  void expectOpenFailureBothBackends(const std::string& what) {
    expectOpenFailure(what, TraceReadBackend::kStream);
    if (TraceShardReader::mmapSupported())
      expectOpenFailure(what, TraceReadBackend::kMmap);
  }

  std::string dir_;
  std::string shard0_;
  std::vector<char> pristine_;
  std::uint32_t footer_bytes_ = 0;
  std::size_t footer_start_ = 0;
};

TEST_F(TraceV3FooterCorruption, TruncatedFooterIsDetectedAtOpen) {
  auto bytes = pristine_;
  bytes.resize(bytes.size() - 5);
  writeFile(shard0_, bytes);
  expectOpenFailureBothBackends("truncated");
}

TEST_F(TraceV3FooterCorruption, FlippedFooterByteFailsIndexChecksum) {
  auto bytes = pristine_;
  bytes[footer_start_ + 10] ^= 0x20;
  writeFile(shard0_, bytes);
  expectOpenFailureBothBackends("block index checksum mismatch");
}

TEST_F(TraceV3FooterCorruption, ResealedCountMismatchIsRejected) {
  auto bytes = pristine_;
  bytes[footer_start_] = static_cast<char>(bytes[footer_start_] ^ 0x01);
  resealFooter(bytes, footer_start_);
  writeFile(shard0_, bytes);
  expectOpenFailureBothBackends("corrupt block index");
}

TEST_F(TraceV3FooterCorruption, ResealedOffsetMismatchIsRejected) {
  // Nudge the second entry's file offset: every field still plausible,
  // but the chain through the payload no longer matches.
  auto bytes = pristine_;
  const std::size_t entry1 = footer_start_ + 4 +
                             dynagraph::kTraceIndexEntryBytes;
  ASSERT_LT(entry1 + 8, bytes.size());
  bytes[entry1] = static_cast<char>(bytes[entry1] ^ 0x02);
  resealFooter(bytes, footer_start_);
  writeFile(shard0_, bytes);
  expectOpenFailureBothBackends("block index disagrees with payload layout");
}

TEST_F(TraceV3FooterCorruption, ResealedNonOriginFirstEntryIsRejected) {
  // Entry 0 must carry the origin cursor: seekToTrial's binary search
  // assumes entry 0 precedes every trial, so a checksum-resealed footer
  // claiming otherwise has to be rejected at open, not underflow a seek.
  auto bytes = pristine_;
  auto* data = reinterpret_cast<unsigned char*>(bytes.data());
  data[footer_start_ + 4 + 24] = 1;  // entry 0 trials_begun = 1
  resealFooter(bytes, footer_start_);
  writeFile(shard0_, bytes);
  expectOpenFailureBothBackends("block index cursor out of range");
}

TEST_F(TraceV3FooterCorruption, ResealedCursorOutOfRangeIsRejected) {
  // An impossible record cursor (trials begun beyond the shard's trial
  // count) must be rejected even with a valid checksum.
  auto bytes = pristine_;
  const std::size_t trials_at = footer_start_ + 4 +
                                dynagraph::kTraceIndexEntryBytes + 24;
  auto* data = reinterpret_cast<unsigned char*>(bytes.data());
  for (int i = 0; i < 8; ++i)
    data[trials_at + static_cast<std::size_t>(i)] = 0xff;
  resealFooter(bytes, footer_start_);
  writeFile(shard0_, bytes);
  expectOpenFailureBothBackends("block index cursor out of range");
}

TEST_F(TraceV3FooterCorruption, ZeroFooterSizeInHeaderIsRejected) {
  // Claim "no footer" in the header (re-sealing the header checksum): the
  // v3 reader requires an index, and the file size no longer lines up.
  auto bytes = pristine_;
  auto* data = reinterpret_cast<unsigned char*>(bytes.data());
  for (int i = 0; i < 4; ++i) data[68 + static_cast<std::size_t>(i)] = 0;
  const std::uint64_t checksum = fnv1a(data, 72);
  for (int i = 0; i < 8; ++i)
    data[72 + static_cast<std::size_t>(i)] =
        static_cast<unsigned char>(checksum >> (8 * i));
  writeFile(shard0_, bytes);
  expectOpenFailureBothBackends("footer size malformed");
}

TEST_F(TraceV3FooterCorruption, PayloadEditBreaksIndexValidation) {
  // Growing a stored size in the *payload* frame (with the footer intact)
  // must be caught: the index chain no longer matches the frames.
  auto bytes = pristine_;
  const std::size_t frame0 = dynagraph::kTraceHeaderSizeV2;
  bytes[frame0 + 4] = static_cast<char>(bytes[frame0 + 4] ^ 0x01);
  writeFile(shard0_, bytes);
  // Either the index validation or the block checksum fires first
  // depending on backend ordering — both are clean rejections.
  try {
    TraceShardReader reader(shard0_, dynagraph::kTraceBlockBytes,
                            TraceReadBackend::kStream);
    while (reader.beginTrial()) reader.skipRest();
    FAIL() << "decode succeeded on payload/index mismatch";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("corrupt"), std::string::npos)
        << "actual: " << e.what();
  }
}

// ------------------------------------------------------------------- fuzz

TEST(TraceV3Fuzz, MutatedShardsFailCleanlyOrDecodeInRangeUnderSeek) {
  // Randomized robustness sweep over the v3 decoder *and* the seek path:
  // mutate a few bytes of a valid shard, then (a) fully decode and (b)
  // seek to a random trial and decode from there, on both backends. Every
  // outcome must be a clean std::runtime_error or an in-range decode —
  // never a crash, hang, or sanitizer finding (the ASan+UBSan CI job runs
  // this with DODA_FUZZ_ITERS=2000).
  const std::string dir = scratchDir("fuzz");
  {
    TraceWriterOptions options;
    options.block_bytes = 512;  // many blocks -> frames and footer mutate
    writeStore(dir, 24, sampleTrials(24, 6, 600, 77), 1, options);
  }
  const std::string shard0 =
      (std::filesystem::path(dir) / dynagraph::traceShardFileName(0))
          .string();
  const std::vector<char> pristine = readFile(shard0);

  std::size_t iterations = 64;
  if (const char* env = std::getenv("DODA_FUZZ_ITERS"))
    iterations = std::strtoull(env, nullptr, 10);

  util::Rng rng(0xf033);
  std::size_t rejected = 0;
  for (std::size_t iter = 0; iter < iterations; ++iter) {
    auto bytes = pristine;
    const std::size_t mutations = 1 + rng.below(4);
    for (std::size_t m = 0; m < mutations; ++m) {
      const std::size_t pos = rng.below(bytes.size());
      bytes[pos] = static_cast<char>(
          bytes[pos] ^ static_cast<char>(1 + rng.below(255)));
    }
    writeFile(shard0, bytes);
    const std::uint64_t target = rng.below(6);
    for (const auto backend :
         {TraceReadBackend::kStream, TraceReadBackend::kMmap}) {
      if (backend == TraceReadBackend::kMmap &&
          !TraceShardReader::mmapSupported())
        continue;
      try {
        TraceShardReader reader(shard0, dynagraph::kTraceBlockBytes,
                                backend);
        if (reader.seekToTrial(reader.header().base_trial + target)) {
          while (reader.beginTrial()) {
            while (const auto i = reader.next())
              ASSERT_LT(i->b(), reader.header().node_count);
          }
        }
      } catch (const std::runtime_error&) {
        ++rejected;  // clean rejection is the expected common case
      }
    }
  }
  EXPECT_GT(rejected, 0u);
  writeFile(shard0, pristine);  // leave the store decodable for cleanup
}

// -------------------------------------------------------- streaming import

TEST(TraceV3StreamingImport, TimeOrderedFileStreamsAndMatchesMaterialized) {
  // A time-sorted CSV takes the streaming two-pass path; its store must
  // decode to exactly the materialized parse.
  const std::string input = scratchDir("stream_events") + ".csv";
  {
    util::Rng rng(321);
    std::ofstream out(input);
    out << "# streamed contact log\n";
    for (int t = 0; t < 600; ++t) {
      const auto u = 500 + rng.below(30);
      const auto v = 500 + rng.below(30);
      out << t / 2 << "\t" << u << "\t" << v << "\n";  // non-decreasing t
    }
  }
  dynagraph::ContactImportOptions options;
  options.trials = 5;
  const std::string dir = scratchDir("stream_store");
  const auto stats = dynagraph::importContactTrace(input, dir, 2, options);
  EXPECT_TRUE(stats.timestamped);
  ASSERT_GT(stats.events, 500u);

  const auto reference = dynagraph::loadContactEvents(input, options);
  EXPECT_EQ(stats.events, reference.stats.events);
  EXPECT_EQ(stats.node_count, reference.stats.node_count);
  EXPECT_EQ(stats.self_loops, reference.stats.self_loops);
  EXPECT_EQ(stats.t_min, reference.stats.t_min);
  EXPECT_EQ(stats.t_max, reference.stats.t_max);

  const auto store = TraceStore::open(dir);
  EXPECT_EQ(store.formatVersion(), dynagraph::kTraceFormatVersion);
  const auto decoded = decodeStore(store, TraceReadBackend::kAuto);
  std::size_t offset = 0;
  for (const auto& trial : decoded) {
    for (core::Time t = 0; t < trial.length(); ++t)
      EXPECT_EQ(trial.at(t), reference.events[offset + t]);
    offset += static_cast<std::size_t>(trial.length());
  }
  EXPECT_EQ(offset, reference.events.size());
}

TEST(TraceV3StreamingImport, OutOfOrderTimestampsFallBackToSortedImport) {
  const std::string input = scratchDir("unsorted_events") + ".csv";
  {
    std::ofstream out(input);
    out << "30 1 2\n10 2 3\n20 3 4\n10 4 5\n";  // out of order
  }
  const std::string dir = scratchDir("unsorted_store");
  dynagraph::ContactImportOptions options;
  options.trials = 2;
  const auto stats = dynagraph::importContactTrace(input, dir, 1, options);
  EXPECT_EQ(stats.events, 4u);
  const auto reference = dynagraph::loadContactEvents(input, options);
  const auto decoded =
      decodeStore(TraceStore::open(dir), TraceReadBackend::kAuto);
  std::size_t offset = 0;
  for (const auto& trial : decoded) {
    for (core::Time t = 0; t < trial.length(); ++t)
      EXPECT_EQ(trial.at(t), reference.events[offset + t]);
    offset += static_cast<std::size_t>(trial.length());
  }
  EXPECT_EQ(offset, reference.events.size());
}

TEST(TraceV3StreamingImport, MaxEventsCapsBothPasses) {
  const std::string input = scratchDir("capped_events") + ".csv";
  {
    std::ofstream out(input);
    for (int i = 0; i < 100; ++i) out << i << " " << i + 1 << "\n";
  }
  dynagraph::ContactImportOptions options;
  options.max_events = 10;
  options.trials = 2;
  const std::string dir = scratchDir("capped_store");
  const auto stats = dynagraph::importContactTrace(input, dir, 1, options);
  EXPECT_EQ(stats.events, 10u);
  const auto store = TraceStore::open(dir);
  std::uint64_t total = 0;
  auto reader = store.openShard(0);
  while (reader.beginTrial()) {
    total += reader.trialLength();
    reader.skipRest();
  }
  EXPECT_EQ(total, 10u);
}

// ------------------------------------------------------ partial store open

TEST(TraceStorePartial, StrictOpenNamesTheOffendingShardPath) {
  const std::string dir = scratchDir("strict_names_path");
  writeStore(dir, 16, sampleTrials(16, 6, 400, 41), 3, TraceWriterOptions{});
  const std::string shard1 =
      (std::filesystem::path(dir) / dynagraph::traceShardFileName(1))
          .string();
  auto bytes = readFile(shard1);
  bytes.resize(16);  // truncate inside the header
  writeFile(shard1, bytes);
  try {
    TraceStore::open(dir);
    FAIL() << "strict open must reject the truncated shard";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find(shard1), std::string::npos)
        << e.what();
  }
}

TEST(TraceStorePartial, AllowPartialQuarantinesTruncatedShard) {
  const std::string dir = scratchDir("partial_truncated");
  const auto trials = sampleTrials(16, 6, 400, 42);
  writeStore(dir, 16, trials, 3, TraceWriterOptions{});
  const auto full = decodeStore(TraceStore::open(dir),
                                TraceReadBackend::kStream);
  const std::string shard1 =
      (std::filesystem::path(dir) / dynagraph::traceShardFileName(1))
          .string();
  auto bytes = readFile(shard1);
  bytes.resize(bytes.size() / 2);
  writeFile(shard1, bytes);

  const auto store =
      TraceStore::open(dir, dynagraph::TraceStoreOpenOptions{true});
  EXPECT_EQ(store.shardCount(), 2u);
  ASSERT_EQ(store.quarantined().size(), 1u);
  EXPECT_EQ(store.quarantined()[0].path, shard1);
  EXPECT_FALSE(store.quarantined()[0].reason.empty());
  // Trial ids keep their global numbering across the gap.
  EXPECT_EQ(store.trialCount(), trials.size());
  EXPECT_EQ(store.shardHeaders()[1].shard_index, 2u);
  // openShard(1) maps to the on-disk shard 2, past the quarantined file.
  const auto usable = decodeStore(store, TraceReadBackend::kStream);
  ASSERT_EQ(usable.size(), 4u);
  EXPECT_EQ(usable[0], full[0]);
  EXPECT_EQ(usable[1], full[1]);
  EXPECT_EQ(usable[2], full[4]);
  EXPECT_EQ(usable[3], full[5]);
}

TEST(TraceStorePartial, AllowPartialProbesForwardPastCorruptShardZero) {
  const std::string dir = scratchDir("partial_shard0");
  const auto trials = sampleTrials(12, 6, 300, 43);
  writeStore(dir, 12, trials, 3, TraceWriterOptions{});
  const std::string shard0 =
      (std::filesystem::path(dir) / dynagraph::traceShardFileName(0))
          .string();
  auto bytes = readFile(shard0);
  bytes[8] = static_cast<char>(bytes[8] ^ 0x5a);  // break the header
  writeFile(shard0, bytes);

  EXPECT_THROW(TraceStore::open(dir), std::runtime_error);
  const auto store =
      TraceStore::open(dir, dynagraph::TraceStoreOpenOptions{true});
  EXPECT_EQ(store.shardCount(), 2u);
  EXPECT_EQ(store.nodeCount(), 12u);
  ASSERT_EQ(store.quarantined().size(), 1u);
  EXPECT_EQ(store.quarantined()[0].path, shard0);
  EXPECT_EQ(store.trialCount(), trials.size());
  EXPECT_EQ(store.shardHeaders()[0].shard_index, 1u);
}

TEST(TraceStorePartial, AllowPartialStillThrowsWhenNoShardIsUsable) {
  const std::string dir = scratchDir("partial_hopeless");
  writeStore(dir, 8, sampleTrials(8, 2, 200, 44), 1, TraceWriterOptions{});
  const std::string shard0 =
      (std::filesystem::path(dir) / dynagraph::traceShardFileName(0))
          .string();
  writeFile(shard0, std::vector<char>(24, 'x'));
  try {
    TraceStore::open(dir, dynagraph::TraceStoreOpenOptions{true});
    FAIL() << "a store with no usable shard must not open";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("no usable shards"), std::string::npos) << what;
    EXPECT_NE(what.find(shard0), std::string::npos) << what;
  }
}

TEST(TraceStorePartial, ReplayFoldsQuarantinedTrialsAsFailed) {
  const std::string dir = scratchDir("partial_replay");
  const std::size_t n = 16;
  const auto trials = sampleTrials(n, 9, 1500, 45);
  writeStore(dir, n, trials, 3, TraceWriterOptions{});
  const auto factory = [](sim::TrialContext&) {
    return std::make_unique<algorithms::Gathering>();
  };
  sim::ReplayConfig config;
  config.threads = 1;
  const auto full = sim::replayTrace(TraceStore::open(dir), config, factory);
  ASSERT_EQ(full.failed_trials, 0u);

  const std::string shard1 =
      (std::filesystem::path(dir) / dynagraph::traceShardFileName(1))
          .string();
  auto bytes = readFile(shard1);
  bytes.resize(32);
  writeFile(shard1, bytes);
  const auto store =
      TraceStore::open(dir, dynagraph::TraceStoreOpenOptions{true});
  const auto partial = sim::replayTrace(store, config, factory);
  // The three trials inside the gap fold as failures; the six usable
  // trials replay normally.
  EXPECT_EQ(partial.failed_trials, 3u);
  EXPECT_EQ(partial.interactions.count(), 6u);
  EXPECT_LE(partial.interactions.max(), full.interactions.max());
}

}  // namespace
}  // namespace doda
