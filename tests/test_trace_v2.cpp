// Tests of the v2 trace container (dynagraph/trace_io): compressed
// round-trips (block-spanning trials, raw/uncompressed blocks), the mmap
// and buffered-stream reader backends, block-level corruption paths,
// v1 <-> v2 cross-version reads, randomized decoder fuzz, and the external
// contact-trace importer (dynagraph/trace_import).

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "algorithms/gathering.hpp"
#include "algorithms/waiting_greedy.hpp"
#include "dynagraph/trace_import.hpp"
#include "dynagraph/trace_io.hpp"
#include "dynagraph/traces.hpp"
#include "sim/trace_replay.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace doda {
namespace {

using dynagraph::Interaction;
using dynagraph::InteractionSequence;
using dynagraph::TraceReadBackend;
using dynagraph::TraceShardReader;
using dynagraph::TraceStore;
using dynagraph::TraceStoreWriter;
using dynagraph::TraceWriterOptions;
using sim::MeasureConfig;
using sim::MeasureResult;

std::string scratchDir(const std::string& tag) {
  static int counter = 0;
  const auto dir = std::filesystem::path(testing::TempDir()) /
                   ("doda_trace_v2_" + tag + "_" + std::to_string(::getpid()) +
                    "_" + std::to_string(counter++));
  std::filesystem::remove_all(dir);
  return dir.string();
}

TraceWriterOptions v1Options() {
  TraceWriterOptions options;
  options.format_version = dynagraph::kTraceFormatVersionV1;
  return options;
}

/// This suite pins the v2 container (the writer default moved to v3).
TraceWriterOptions v2Options() {
  TraceWriterOptions options;
  options.format_version = dynagraph::kTraceFormatVersionV2;
  return options;
}

std::vector<InteractionSequence> sampleTrials(std::size_t n,
                                              std::size_t count,
                                              core::Time length,
                                              std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<InteractionSequence> trials;
  trials.reserve(count);
  for (std::size_t i = 0; i < count; ++i)
    trials.push_back(dynagraph::traces::uniformRandom(n, length, rng));
  return trials;
}

void writeStore(const std::string& dir, std::size_t n,
                const std::vector<InteractionSequence>& trials,
                std::uint32_t shards, const TraceWriterOptions& options) {
  TraceStoreWriter writer(dir, n, trials.size(), shards, options);
  for (const auto& trial : trials) writer.appendTrial(trial);
  writer.finish();
}

std::vector<InteractionSequence> decodeStore(const TraceStore& store,
                                             TraceReadBackend backend) {
  std::vector<InteractionSequence> trials;
  for (std::size_t s = 0; s < store.shardCount(); ++s) {
    auto reader = store.openShard(s, backend);
    while (reader.beginTrial()) trials.push_back(reader.readRest());
  }
  return trials;
}

std::vector<char> readFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<char>((std::istreambuf_iterator<char>(in)),
                           std::istreambuf_iterator<char>());
}

void writeFile(const std::string& path, const std::vector<char>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

std::uint64_t fnv1a(const unsigned char* data, std::size_t size) {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (std::size_t i = 0; i < size; ++i) {
    hash ^= data[i];
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

void expectIdentical(const MeasureResult& a, const MeasureResult& b) {
  EXPECT_EQ(a.interactions.count(), b.interactions.count());
  EXPECT_EQ(a.interactions.mean(), b.interactions.mean());
  EXPECT_EQ(a.interactions.variance(), b.interactions.variance());
  EXPECT_EQ(a.cost.count(), b.cost.count());
  EXPECT_EQ(a.cost.mean(), b.cost.mean());
  EXPECT_EQ(a.cost.variance(), b.cost.variance());
  EXPECT_EQ(a.failed_trials, b.failed_trials);
}

// ------------------------------------------------------------- round trip

TEST(TraceV2RoundTrip, CompressedStorePreservesEveryTrialAndShrinks) {
  const auto trials = sampleTrials(24, 6, 3000, 99);
  const std::string dir_v2 = scratchDir("rt_v2");
  const std::string dir_v1 = scratchDir("rt_v1");
  writeStore(dir_v2, 24, trials, 3, v2Options());
  writeStore(dir_v1, 24, trials, 3, v1Options());

  const auto store = TraceStore::open(dir_v2);
  EXPECT_EQ(store.formatVersion(), dynagraph::kTraceFormatVersionV2);
  EXPECT_EQ(store.trialCount(), trials.size());
  const auto decoded = decodeStore(store, TraceReadBackend::kAuto);
  ASSERT_EQ(decoded.size(), trials.size());
  for (std::size_t i = 0; i < trials.size(); ++i)
    EXPECT_EQ(decoded[i], trials[i]) << "trial " << i;

  // The whole point of v2: the same content takes fewer bytes.
  const auto v1 = TraceStore::open(dir_v1);
  EXPECT_EQ(v1.formatVersion(), dynagraph::kTraceFormatVersionV1);
  EXPECT_LT(store.totalFileBytes(), v1.totalFileBytes());
}

TEST(TraceV2RoundTrip, TinyBlocksSpanTrialsAndVarints) {
  // Minimum block size: every trial (and some varints) straddles many
  // block boundaries, exercising model resets mid-record.
  TraceWriterOptions options = v2Options();
  options.block_bytes = 16;
  const auto trials = sampleTrials(200, 4, 700, 5);
  const std::string dir = scratchDir("tiny_blocks");
  writeStore(dir, 200, trials, 2, options);
  const auto decoded =
      decodeStore(TraceStore::open(dir), TraceReadBackend::kAuto);
  ASSERT_EQ(decoded.size(), trials.size());
  for (std::size_t i = 0; i < trials.size(); ++i)
    EXPECT_EQ(decoded[i], trials[i]) << "trial " << i;
}

TEST(TraceV2RoundTrip, UncompressedStoreRoundTrips) {
  TraceWriterOptions options = v2Options();
  options.compress = false;
  const auto trials = sampleTrials(24, 5, 800, 7);
  const std::string dir = scratchDir("raw_blocks");
  writeStore(dir, 24, trials, 2, options);
  const auto store = TraceStore::open(dir);
  EXPECT_EQ(store.shardHeaders()[0].codec, dynagraph::kTraceCodecRaw);
  const auto decoded = decodeStore(store, TraceReadBackend::kAuto);
  ASSERT_EQ(decoded.size(), trials.size());
  for (std::size_t i = 0; i < trials.size(); ++i)
    EXPECT_EQ(decoded[i], trials[i]) << "trial " << i;
}

TEST(TraceV2RoundTrip, EmptyAndSingleInteractionTrials) {
  std::vector<InteractionSequence> trials;
  trials.push_back(InteractionSequence{});
  trials.push_back(InteractionSequence{Interaction(0, 1)});
  trials.push_back(InteractionSequence{});
  const std::string dir = scratchDir("degenerate");
  writeStore(dir, 4, trials, 1, v2Options());
  const auto decoded =
      decodeStore(TraceStore::open(dir), TraceReadBackend::kAuto);
  ASSERT_EQ(decoded.size(), trials.size());
  for (std::size_t i = 0; i < trials.size(); ++i)
    EXPECT_EQ(decoded[i], trials[i]);
}

// --------------------------------------------------------------- backends

TEST(TraceV2Backends, MmapMatchesStreamOnBothFormats) {
  for (const bool v2 : {false, true}) {
    const auto trials = sampleTrials(32, 5, 1200, v2 ? 21 : 22);
    const std::string dir = scratchDir(v2 ? "backend_v2" : "backend_v1");
    writeStore(dir, 32, trials, 2, v2 ? v2Options() : v1Options());
    const auto store = TraceStore::open(dir);
    const auto streamed = decodeStore(store, TraceReadBackend::kStream);
    ASSERT_EQ(streamed.size(), trials.size());
    for (std::size_t i = 0; i < trials.size(); ++i)
      EXPECT_EQ(streamed[i], trials[i]);
    if (!TraceShardReader::mmapSupported()) {
      EXPECT_THROW(store.openShard(0, TraceReadBackend::kMmap),
                   std::runtime_error);
      continue;
    }
    auto mapped_reader = store.openShard(0, TraceReadBackend::kMmap);
    EXPECT_TRUE(mapped_reader.usingMmap());
    const auto mapped = decodeStore(store, TraceReadBackend::kMmap);
    ASSERT_EQ(mapped.size(), streamed.size());
    for (std::size_t i = 0; i < streamed.size(); ++i)
      EXPECT_EQ(mapped[i], streamed[i]);
  }
}

TEST(TraceV2Backends, StreamBackendNeverMaps) {
  const auto trials = sampleTrials(16, 3, 100, 1);
  const std::string dir = scratchDir("stream_only");
  writeStore(dir, 16, trials, 1, v2Options());
  auto reader =
      TraceStore::open(dir).openShard(0, TraceReadBackend::kStream);
  EXPECT_FALSE(reader.usingMmap());
}

TEST(TraceV2Backends, MmapBackendRejectsMissingFile) {
  if (!TraceShardReader::mmapSupported()) GTEST_SKIP();
  EXPECT_THROW(TraceShardReader(scratchDir("absent") + "/nope.trace",
                                dynagraph::kTraceBlockBytes,
                                TraceReadBackend::kMmap),
               std::runtime_error);
}

// ----------------------------------------------- replay golden bit-identity

TEST(TraceV2Replay, CompressedReplayBitIdenticalToV1AndInMemory) {
  // The tentpole acceptance contract: a compressed v2 store replays
  // bit-identical to the v1 store of the same workload and to the
  // in-memory synthetic run, at threads 1, 2 and 8, on both backends.
  MeasureConfig config;
  config.node_count = 10;
  config.trials = 12;
  config.seed = 20260728;
  const core::Time length = 2048;

  auto factory = [](sim::TrialContext&) {
    return std::make_unique<algorithms::Gathering>();
  };
  config.threads = 1;
  const auto in_memory = measureWithCost(config, length, factory);
  ASSERT_EQ(in_memory.failed_trials, 0u);
  ASSERT_GT(in_memory.interactions.count(), 0u);

  const std::string dir_v1 = scratchDir("replay_v1");
  const std::string dir_v2 = scratchDir("replay_v2");
  sim::recordSynthetic(dir_v1, config, length, 4, v1Options());
  sim::recordSynthetic(dir_v2, config, length, 4, v2Options());
  const auto store_v1 = TraceStore::open(dir_v1);
  const auto store_v2 = TraceStore::open(dir_v2);
  EXPECT_LT(store_v2.totalFileBytes(), store_v1.totalFileBytes());

  for (const auto backend :
       {TraceReadBackend::kAuto, TraceReadBackend::kStream}) {
    for (const std::size_t threads : {1u, 2u, 8u}) {
      sim::ReplayConfig replay;
      replay.threads = threads;
      replay.compute_cost = true;
      replay.backend = backend;
      const auto from_v1 = replayTrace(store_v1, replay, factory);
      const auto from_v2 = replayTrace(store_v2, replay, factory);
      expectIdentical(in_memory, from_v1);
      expectIdentical(in_memory, from_v2);
    }
  }
}

// -------------------------------------------------------------- corruption

class TraceV2Corruption : public testing::Test {
 protected:
  void SetUp() override {
    dir_ = scratchDir("corrupt");
    const auto trials = sampleTrials(12, 3, 400, 13);
    writeStore(dir_, 12, trials, 2, v2Options());
    shard0_ = (std::filesystem::path(dir_) /
               dynagraph::traceShardFileName(0))
                  .string();
    pristine_ = readFile(shard0_);
    ASSERT_GT(pristine_.size(),
              dynagraph::kTraceHeaderSizeV2 +
                  dynagraph::kTraceBlockFrameBytes + 8);
  }

  /// Decodes shard 0 fully on `backend`; the corruption tests expect this
  /// to throw std::runtime_error mentioning `what`.
  void expectDecodeFailure(const std::string& what,
                           TraceReadBackend backend) {
    try {
      TraceShardReader reader(shard0_, dynagraph::kTraceBlockBytes, backend);
      while (reader.beginTrial()) reader.skipRest();
      FAIL() << "decode succeeded on " << what;
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find(what), std::string::npos)
          << "actual: " << e.what();
    }
  }

  void expectDecodeFailureBothBackends(const std::string& what) {
    expectDecodeFailure(what, TraceReadBackend::kStream);
    if (TraceShardReader::mmapSupported())
      expectDecodeFailure(what, TraceReadBackend::kMmap);
  }

  static constexpr std::size_t kFrameStart = dynagraph::kTraceHeaderSizeV2;
  static constexpr std::size_t kStoredStart =
      kFrameStart + dynagraph::kTraceBlockFrameBytes;

  std::string dir_;
  std::string shard0_;
  std::vector<char> pristine_;
};

TEST_F(TraceV2Corruption, FlippedPayloadByteFailsBlockChecksum) {
  auto bytes = pristine_;
  bytes[kStoredStart + 2] = static_cast<char>(bytes[kStoredStart + 2] ^ 0x40);
  writeFile(shard0_, bytes);
  expectDecodeFailureBothBackends("block checksum mismatch");
}

TEST_F(TraceV2Corruption, FlippedChecksumFieldIsDetected) {
  auto bytes = pristine_;
  bytes[kFrameStart + 9] = static_cast<char>(bytes[kFrameStart + 9] ^ 0x01);
  writeFile(shard0_, bytes);
  expectDecodeFailureBothBackends("block checksum mismatch");
}

TEST_F(TraceV2Corruption, OversizedBlockRawSizeIsRejected) {
  auto bytes = pristine_;
  for (int i = 0; i < 4; ++i)
    bytes[kFrameStart + static_cast<std::size_t>(i)] =
        static_cast<char>(0xff);
  writeFile(shard0_, bytes);
  expectDecodeFailureBothBackends("corrupt block");
}

TEST_F(TraceV2Corruption, UnknownBlockCodecIsRejected) {
  auto bytes = pristine_;
  bytes[kFrameStart + 8] = 7;
  writeFile(shard0_, bytes);
  expectDecodeFailureBothBackends("unknown block codec");
}

TEST_F(TraceV2Corruption, TruncatedShardIsDetectedAtOpen) {
  auto bytes = pristine_;
  bytes.resize(bytes.size() - 11);
  writeFile(shard0_, bytes);
  expectDecodeFailureBothBackends("truncated");
}

TEST_F(TraceV2Corruption, TruncatedToMidHeaderIsDetectedAtOpen) {
  auto bytes = pristine_;
  bytes.resize(dynagraph::kTraceHeaderSizeV2 - 6);
  writeFile(shard0_, bytes);
  expectDecodeFailureBothBackends("truncated");
}

TEST_F(TraceV2Corruption, FutureFormatVersionIsRejected) {
  auto bytes = pristine_;
  bytes[8] = 5;
  writeFile(shard0_, bytes);
  expectDecodeFailureBothBackends("unsupported format version");
}

TEST_F(TraceV2Corruption, WrongHeaderSizeIsRejected) {
  auto bytes = pristine_;
  bytes[10] = 64;
  writeFile(shard0_, bytes);
  expectDecodeFailureBothBackends("unexpected header size");
}

TEST_F(TraceV2Corruption, FlippedHeaderFieldFailsHeaderChecksum) {
  auto bytes = pristine_;
  bytes[56] = static_cast<char>(bytes[56] ^ 0x01);  // raw payload bytes
  writeFile(shard0_, bytes);
  expectDecodeFailureBothBackends("header checksum mismatch");
}

TEST_F(TraceV2Corruption, InflatedRawPayloadDeclarationIsRejected) {
  // Bump the declared raw payload size and re-seal the header checksum:
  // every block then decodes, but the accounted record stream ends short,
  // which the end-of-shard check must report.
  auto bytes = pristine_;
  auto* raw = reinterpret_cast<unsigned char*>(bytes.data());
  std::uint64_t declared = 0;
  for (int i = 0; i < 8; ++i)
    declared |= static_cast<std::uint64_t>(raw[56 + i]) << (8 * i);
  declared += 2;
  for (int i = 0; i < 8; ++i)
    raw[56 + i] = static_cast<unsigned char>(declared >> (8 * i));
  const std::uint64_t checksum = fnv1a(raw, 72);
  for (int i = 0; i < 8; ++i)
    raw[72 + i] = static_cast<unsigned char>(checksum >> (8 * i));
  writeFile(shard0_, bytes);
  expectDecodeFailureBothBackends("corrupt");
}

// ------------------------------------------------------------ cross-version

TEST(TraceV2CrossVersion, V1AndV2StoresDecodeIdentically) {
  const auto trials = sampleTrials(20, 5, 900, 31);
  const std::string dir_v1 = scratchDir("cross_v1");
  const std::string dir_v2 = scratchDir("cross_v2");
  writeStore(dir_v1, 20, trials, 2, v1Options());
  writeStore(dir_v2, 20, trials, 2, v2Options());
  const auto from_v1 =
      decodeStore(TraceStore::open(dir_v1), TraceReadBackend::kAuto);
  const auto from_v2 =
      decodeStore(TraceStore::open(dir_v2), TraceReadBackend::kAuto);
  ASSERT_EQ(from_v1.size(), from_v2.size());
  for (std::size_t i = 0; i < from_v1.size(); ++i) {
    EXPECT_EQ(from_v1[i], trials[i]);
    EXPECT_EQ(from_v2[i], trials[i]);
  }
}

TEST(TraceV2CrossVersion, MixedVersionStoreIsRejected) {
  const auto trials = sampleTrials(16, 4, 200, 3);
  const std::string dir_v1 = scratchDir("mixed_v1");
  const std::string dir_v2 = scratchDir("mixed_v2");
  writeStore(dir_v1, 16, trials, 2, v1Options());
  writeStore(dir_v2, 16, trials, 2, v2Options());
  // Splice a v1 shard into the v2 store: same shape, same content, but the
  // cross-shard format check must refuse the franken-store.
  std::filesystem::copy_file(
      std::filesystem::path(dir_v1) / dynagraph::traceShardFileName(1),
      std::filesystem::path(dir_v2) / dynagraph::traceShardFileName(1),
      std::filesystem::copy_options::overwrite_existing);
  EXPECT_THROW(
      try { TraceStore::open(dir_v2); } catch (const std::runtime_error& e) {
        EXPECT_NE(std::string(e.what()).find("format version"),
                  std::string::npos);
        throw;
      },
      std::runtime_error);
}

TEST(TraceV2CrossVersion, WriterRejectsUnknownVersionAndBadBlockSize) {
  TraceWriterOptions bad_version;
  bad_version.format_version = 5;
  EXPECT_THROW(TraceStoreWriter(scratchDir("bad_opt"), 8, 2, 1, bad_version),
               std::invalid_argument);
  TraceWriterOptions bad_block;
  bad_block.block_bytes = 4;  // below the format's minimum
  EXPECT_THROW(TraceStoreWriter(scratchDir("bad_opt"), 8, 2, 1, bad_block),
               std::invalid_argument);
}

// ------------------------------------------------------------------- fuzz

TEST(TraceV2Fuzz, MutatedShardsFailCleanlyOrDecodeInRange) {
  // Randomized robustness sweep over the decoder: mutate a few bytes of a
  // valid compressed shard and fully decode it on both backends. Every
  // outcome must be either a clean std::runtime_error or a successful
  // decode of in-range interactions — never a crash, hang, or sanitizer
  // finding (the ASan+UBSan CI job runs this with DODA_FUZZ_ITERS=2000).
  const std::string dir = scratchDir("fuzz");
  {
    TraceWriterOptions options = v2Options();
    options.block_bytes = 512;  // many small blocks -> frames get mutated too
    writeStore(dir, 24, sampleTrials(24, 4, 600, 77), 1, options);
  }
  const std::string shard0 =
      (std::filesystem::path(dir) / dynagraph::traceShardFileName(0))
          .string();
  const std::vector<char> pristine = readFile(shard0);

  std::size_t iterations = 64;
  if (const char* env = std::getenv("DODA_FUZZ_ITERS"))
    iterations = std::strtoull(env, nullptr, 10);

  util::Rng rng(0xf022);
  std::size_t rejected = 0;
  for (std::size_t iter = 0; iter < iterations; ++iter) {
    auto bytes = pristine;
    const std::size_t mutations = 1 + rng.below(4);
    for (std::size_t m = 0; m < mutations; ++m) {
      const std::size_t pos = rng.below(bytes.size());
      bytes[pos] = static_cast<char>(
          bytes[pos] ^ static_cast<char>(1 + rng.below(255)));
    }
    writeFile(shard0, bytes);
    for (const auto backend :
         {TraceReadBackend::kStream, TraceReadBackend::kMmap}) {
      if (backend == TraceReadBackend::kMmap &&
          !TraceShardReader::mmapSupported())
        continue;
      try {
        TraceShardReader reader(shard0, dynagraph::kTraceBlockBytes,
                                backend);
        while (reader.beginTrial()) {
          while (const auto i = reader.next())
            ASSERT_LT(i->b(), reader.header().node_count);
        }
      } catch (const std::runtime_error&) {
        ++rejected;  // clean rejection is the expected common case
      }
    }
  }
  EXPECT_GT(rejected, 0u);
  writeFile(shard0, pristine);  // leave the store decodable for cleanup
}

// --------------------------------------------------------------- importer

TEST(ContactImport, ParsesCsvWithHeaderCommentsAndSelfLoops) {
  std::istringstream in(
      "# SocioPatterns-style contact list\n"
      "time,i,j\n"
      "40,5,9\r\n"
      "20,9,17\n"
      "20,17,3\n"
      "60,5,5\n"
      "60,17,5\n"
      "80;3;9\n");
  const auto trace = dynagraph::readContactEvents(in);
  EXPECT_EQ(trace.stats.events, 5u);
  EXPECT_EQ(trace.stats.self_loops, 1u);
  EXPECT_EQ(trace.stats.node_count, 4u);
  EXPECT_TRUE(trace.stats.timestamped);
  EXPECT_EQ(trace.stats.t_min, 20.0);
  EXPECT_EQ(trace.stats.t_max, 80.0);
  // External ids {3, 5, 9, 17} -> dense {0, 1, 2, 3}.
  const std::vector<std::uint64_t> ids{3, 5, 9, 17};
  EXPECT_EQ(trace.external_ids, ids);
  // Time-sorted, stable within equal timestamps.
  const std::vector<Interaction> expected{
      Interaction(2, 3), Interaction(3, 0), Interaction(1, 2),
      Interaction(3, 1), Interaction(0, 2)};
  EXPECT_EQ(trace.events, expected);
}

TEST(ContactImport, UntimedPairsKeepFileOrder) {
  std::istringstream in("7 3\n3 9\n9 7\n");
  const auto trace = dynagraph::readContactEvents(in);
  EXPECT_FALSE(trace.stats.timestamped);
  const std::vector<Interaction> expected{Interaction(1, 0),
                                          Interaction(0, 2),
                                          Interaction(2, 1)};
  EXPECT_EQ(trace.events, expected);
}

TEST(ContactImport, RejectsMalformedInput) {
  {
    std::istringstream in("1 2\n3 4 5\n");  // mixed shapes
    EXPECT_THROW(dynagraph::readContactEvents(in), std::runtime_error);
  }
  {
    std::istringstream in("1 2\nx y\n");  // non-numeric after data
    EXPECT_THROW(dynagraph::readContactEvents(in), std::runtime_error);
  }
  {
    std::istringstream in("# only comments\n");
    EXPECT_THROW(dynagraph::readContactEvents(in), std::runtime_error);
  }
  {
    std::istringstream in("5 5\n");  // nothing but a self-loop
    EXPECT_THROW(dynagraph::readContactEvents(in), std::runtime_error);
  }
  {
    dynagraph::ContactImportOptions strict;
    strict.skip_self_loops = false;
    std::istringstream in("1 2\n5 5\n");
    EXPECT_THROW(dynagraph::readContactEvents(in, strict),
                 std::runtime_error);
  }
}

TEST(ContactImport, MaxEventsCapsIngestion) {
  dynagraph::ContactImportOptions options;
  options.max_events = 2;
  std::istringstream in("1 2\n2 3\n3 4\n4 5\n");
  const auto trace = dynagraph::readContactEvents(in, options);
  EXPECT_EQ(trace.stats.events, 2u);
}

TEST(ContactImport, ImportedStoreRoundTripsAndReplays) {
  // End to end: event file -> sharded v2 store -> decoded trials match the
  // parsed segments, and the store replays through the executor.
  const std::string input = scratchDir("events") + ".csv";
  {
    util::Rng rng(123);
    std::ofstream out(input);
    out << "# synthetic contact log\n";
    for (int t = 0; t < 500; ++t) {
      // Zipf-flavored endpoints with external ids offset by 1000.
      const auto u = 1000 + rng.below(5) * rng.below(5);
      auto v = 1000 + rng.below(25);
      out << t / 3 << "\t" << u << "\t" << v << "\n";
    }
  }
  dynagraph::ContactImportOptions options;
  options.trials = 7;
  const std::string dir = scratchDir("import_store");
  const auto stats =
      dynagraph::importContactTrace(input, dir, 3, options);
  ASSERT_GT(stats.events, 400u);
  ASSERT_GE(stats.node_count, 2u);

  const auto store = TraceStore::open(dir);
  EXPECT_EQ(store.trialCount(), 7u);
  EXPECT_EQ(store.shardCount(), 3u);
  EXPECT_EQ(store.nodeCount(), stats.node_count);

  const auto reference = dynagraph::loadContactEvents(input, options);
  const auto decoded = decodeStore(store, TraceReadBackend::kAuto);
  ASSERT_EQ(decoded.size(), 7u);
  std::size_t offset = 0;
  for (const auto& trial : decoded) {
    for (core::Time t = 0; t < trial.length(); ++t)
      EXPECT_EQ(trial.at(t), reference.events[offset + t]);
    offset += trial.length();
  }
  EXPECT_EQ(offset, reference.events.size());

  sim::ReplayConfig replay;
  replay.threads = 2;
  const auto result = replayTraceStreaming(
      store, replay, [](const core::SystemInfo&) {
        return std::make_unique<algorithms::Gathering>();
      });
  EXPECT_EQ(result.interactions.count() + result.failed_trials, 7u);
}

}  // namespace
}  // namespace doda
