#include <gtest/gtest.h>

#include "adversary/adaptive_adversaries.hpp"
#include "adversary/randomized_adversary.hpp"
#include "adversary/sequence_adversary.hpp"
#include "adversary/thm2_builder.hpp"
#include "algorithms/gathering.hpp"
#include "algorithms/random_policy.hpp"
#include "algorithms/spanning_tree_aggregation.hpp"
#include "algorithms/waiting.hpp"
#include "analysis/convergecast.hpp"
#include "core/engine.hpp"
#include "dynagraph/traces.hpp"
#include "test_helpers.hpp"
#include "util/rng.hpp"

namespace doda::adversary {
namespace {

using core::Engine;
using core::NodeId;
using core::RunOptions;
using core::Time;
using dynagraph::InteractionSequence;
using dynagraph::kNever;
using testing::ix;
using testing::runOn;

/// Runs `algorithm` against an adaptive adversary for `horizon`
/// interactions and returns the result.
core::ExecutionResult runAdaptive(core::DodaAlgorithm& algorithm,
                                  core::Adversary& adversary,
                                  std::size_t node_count, Time horizon) {
  Engine engine({node_count, 0}, core::AggregationFunction::count());
  RunOptions options;
  options.max_interactions = horizon;
  return engine.run(algorithm, adversary, options);
}

/// Materializes what an adaptive adversary emitted against an algorithm by
/// replaying through a recording engine run. We re-run and capture via a
/// wrapper adversary.
class RecordingAdversary final : public core::Adversary {
 public:
  explicit RecordingAdversary(core::Adversary& inner) : inner_(&inner) {}
  std::string name() const override { return inner_->name(); }
  void reset(const core::SystemInfo& info) override { inner_->reset(info); }
  std::optional<core::Interaction> next(
      Time t, const core::ExecutionView& view) override {
    auto i = inner_->next(t, view);
    if (i) emitted_.append(*i);
    return i;
  }
  const InteractionSequence& emitted() const noexcept { return emitted_; }

 private:
  core::Adversary* inner_;
  InteractionSequence emitted_;
};

class Thm1Param : public ::testing::TestWithParam<int> {};

std::unique_ptr<core::DodaAlgorithm> makeVictim(int which) {
  switch (which) {
    case 0:
      return std::make_unique<algorithms::Waiting>();
    case 1:
      return std::make_unique<algorithms::Gathering>();
    default:
      return std::make_unique<algorithms::RandomPolicy>(123 + which);
  }
}

TEST_P(Thm1Param, NoAlgorithmTerminatesAndConvergecastsRemainPossible) {
  const auto victim = makeVictim(GetParam());
  Thm1Adversary adv;
  RecordingAdversary rec(adv);
  constexpr Time kHorizon = 600;
  const auto r = runAdaptive(*victim, rec, 3, kHorizon);
  // Paper Thm 1: the execution never terminates...
  EXPECT_FALSE(r.terminated) << victim->name();
  EXPECT_EQ(r.interactions_dispatched, kHorizon);
  // ...while a convergecast is always possible, so the cost (the number of
  // back-to-back convergecasts fitting in the emitted sequence) keeps
  // growing with the horizon.
  const auto chain =
      analysis::convergecastChain(rec.emitted(), 3, 0);
  EXPECT_GE(chain.size(), 100u) << victim->name();
}

INSTANTIATE_TEST_SUITE_P(Victims, Thm1Param, ::testing::Values(0, 1, 2));

TEST(Thm1Adversary, RequiresExactlyThreeNodes) {
  Thm1Adversary adv;
  algorithms::Waiting w;
  Engine engine({4, 0}, core::AggregationFunction::count());
  EXPECT_THROW(engine.run(w, adv), std::invalid_argument);
}

TEST(Thm1Adversary, AtMostOneTransferEverHappens) {
  for (int which = 0; which < 3; ++which) {
    const auto victim = makeVictim(which);
    Thm1Adversary adv;
    const auto r = runAdaptive(*victim, adv, 3, 500);
    EXPECT_LE(r.schedule.size(), 1u) << victim->name();
  }
}

class Thm3Param : public ::testing::TestWithParam<int> {};

TEST_P(Thm3Param, DefeatsAlgorithmsKnowingTheUnderlyingGraph) {
  // Paper Thm 3: even knowing G̅ (the 4-cycle), no algorithm terminates.
  std::unique_ptr<core::DodaAlgorithm> victim;
  switch (GetParam()) {
    case 0:
      victim = std::make_unique<algorithms::SpanningTreeAggregation>(
          dynagraph::traces::ringGraph(4));
      break;
    case 1:
      victim = std::make_unique<algorithms::Gathering>();
      break;
    case 2:
      victim = std::make_unique<algorithms::Waiting>();
      break;
    default:
      victim = std::make_unique<algorithms::RandomPolicy>(7);
  }
  Thm3Adversary adv;
  RecordingAdversary rec(adv);
  constexpr Time kHorizon = 900;
  const auto r = runAdaptive(*victim, rec, 4, kHorizon);
  EXPECT_FALSE(r.terminated) << victim->name();
  // The emitted underlying graph stays within the 4-cycle the nodes were
  // promised.
  const auto g = rec.emitted().underlyingGraph(4);
  EXPECT_FALSE(g.hasEdge(0, 2));  // the cycle's chords never appear
  EXPECT_FALSE(g.hasEdge(1, 3));
  // Convergecasts remain possible: the cost grows with the horizon.
  const auto chain = analysis::convergecastChain(rec.emitted(), 4, 0);
  EXPECT_GE(chain.size(), 80u) << victim->name();
}

INSTANTIATE_TEST_SUITE_P(Victims, Thm3Param, ::testing::Values(0, 1, 2, 3));

TEST(Thm3Adversary, RequiresExactlyFourNodes) {
  Thm3Adversary adv;
  algorithms::Waiting w;
  Engine engine({3, 0}, core::AggregationFunction::count());
  EXPECT_THROW(engine.run(w, adv), std::invalid_argument);
}

class Thm2Param : public ::testing::TestWithParam<int> {};

TEST_P(Thm2Param, ObliviousSequenceDefeatsDeterministicAlgorithms) {
  std::unique_ptr<core::DodaAlgorithm> victim =
      GetParam() == 0
          ? std::unique_ptr<core::DodaAlgorithm>(
                std::make_unique<algorithms::Waiting>())
          : std::make_unique<algorithms::Gathering>();
  const core::SystemInfo info{6, 0};
  const auto built = buildThm2Sequence(*victim, info, /*repeats=*/60);
  ASSERT_GT(built.sequence.length(), 0u);

  const auto r = runOn(*victim, built.sequence, 6, 0);
  // Paper Thm 2: the algorithm never terminates...
  EXPECT_FALSE(r.terminated) << victim->name();
  // ...and the designated stuck node still owns data: it never transmitted.
  for (const auto& rec : r.schedule)
    EXPECT_NE(rec.sender, built.stuck_node);
  // ...while convergecasts remain possible on the ring rounds.
  const auto chain = analysis::convergecastChain(built.sequence, 6, 0);
  EXPECT_GE(chain.size(), 10u);
}

INSTANTIATE_TEST_SUITE_P(Victims, Thm2Param, ::testing::Values(0, 1));

TEST(Thm2Builder, PrefixMatchesFirstTransmission) {
  algorithms::Waiting w;
  const auto built = buildThm2Sequence(w, {5, 0}, 3);
  // Waiting transmits at its very first sink interaction: l0 = 1.
  EXPECT_EQ(built.prefix_length, 1u);
  EXPECT_EQ(built.sequence.at(0), ix(0, 1));
}

TEST(Thm2Builder, RejectsTinySystems) {
  algorithms::Waiting w;
  EXPECT_THROW(buildThm2Sequence(w, {3, 0}, 1), std::invalid_argument);
}

/// An algorithm that never transmits: the star itself defeats it.
class NeverTransmit final : public core::DodaAlgorithm {
 public:
  std::string name() const override { return "NeverTransmit"; }
  std::optional<NodeId> decide(const core::Interaction&, Time,
                               const core::ExecutionView&) override {
    return std::nullopt;
  }
};

TEST(Thm2Builder, HandlesSilentAlgorithms) {
  NeverTransmit silent;
  const auto built = buildThm2Sequence(silent, {5, 0}, 2, /*max_prefix=*/64);
  EXPECT_EQ(built.prefix_length, 0u);
  const auto r = runOn(silent, built.sequence, 5, 0);
  EXPECT_FALSE(r.terminated);
}

TEST(RandomizedAdversary, ServesItsCommittedSequence) {
  RandomizedAdversary adv(6, /*seed=*/321);
  algorithms::Gathering ga;
  Engine engine({6, 0}, core::AggregationFunction::count());
  const auto r = engine.run(ga, adv);
  ASSERT_TRUE(r.terminated);
  // Every applied transfer matches the committed randomness.
  for (const auto& rec : r.schedule)
    EXPECT_EQ(adv.lazySequence().committed().at(rec.time),
              core::Interaction(rec.sender, rec.receiver));
}

TEST(RandomizedAdversary, SameSeedSameExecution) {
  algorithms::Gathering ga;
  core::ExecutionResult results[2];
  for (int k = 0; k < 2; ++k) {
    RandomizedAdversary adv(8, 777);
    Engine engine({8, 0}, core::AggregationFunction::count());
    results[k] = engine.run(ga, adv);
  }
  EXPECT_EQ(results[0].schedule, results[1].schedule);
  EXPECT_EQ(results[0].interactions_to_terminate,
            results[1].interactions_to_terminate);
}

TEST(RandomizedAdversary, MeetTimeIndexReadsSameRandomness) {
  RandomizedAdversary adv(5, 999);
  auto idx = adv.makeMeetTimeIndex(0);
  const Time m = idx.meetTime(2, 0);
  ASSERT_NE(m, kNever);
  EXPECT_EQ(adv.lazySequence().committed().at(m), ix(0, 2));
}

TEST(NonUniformAdversary, SkewsInteractionsTowardPopularNodes) {
  NonUniformAdversary adv(10, /*zipf=*/1.5, /*seed=*/55);
  adv.lazySequence().ensure(20000 - 1);
  std::vector<int> involvement(10, 0);
  for (Time t = 0; t < 20000; ++t) {
    const auto& i = adv.lazySequence().committed().at(t);
    ++involvement[i.a()];
    ++involvement[i.b()];
  }
  EXPECT_GT(involvement[0], involvement[9] * 2);
}

TEST(SequenceAdversary, ReplaysExactlyAndExhausts) {
  const InteractionSequence seq{ix(0, 1), ix(1, 2)};
  SequenceAdversary adv(seq);
  algorithms::Waiting w;
  Engine engine({3, 0}, core::AggregationFunction::count());
  const auto r = engine.run(w, adv);
  EXPECT_EQ(r.interactions_dispatched, 2u);
  EXPECT_EQ(adv.sequence(), seq);
}

}  // namespace
}  // namespace doda::adversary
