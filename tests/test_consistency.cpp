// End-to-end consistency: the lazily-generated randomized adversary, its
// committed randomness, and the oracles that read it must all describe the
// same world. Running an algorithm "live" against the lazy adversary and
// replaying it against the materialized committed prefix must produce
// bit-identical executions.

#include <gtest/gtest.h>

#include "adversary/randomized_adversary.hpp"
#include "adversary/sequence_adversary.hpp"
#include "algorithms/full_knowledge.hpp"
#include "algorithms/gathering.hpp"
#include "algorithms/waiting_greedy.hpp"
#include "analysis/convergecast.hpp"
#include "core/engine.hpp"
#include "dynagraph/meet_time_index.hpp"
#include "test_helpers.hpp"
#include "util/stats.hpp"

namespace doda {
namespace {

using core::Time;

class ConsistencySeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ConsistencySeeds, LiveAndReplayedGatheringCoincide) {
  const std::size_t n = 12;
  adversary::RandomizedAdversary live(n, GetParam());
  algorithms::Gathering ga;
  core::Engine engine({n, 0}, core::AggregationFunction::count());
  const auto live_result = engine.run(ga, live);
  ASSERT_TRUE(live_result.terminated);

  const auto committed = live.lazySequence().committed();
  algorithms::Gathering ga2;
  const auto replay = testing::runOn(ga2, committed, n, 0);
  EXPECT_EQ(live_result.schedule, replay.schedule);
  EXPECT_EQ(live_result.interactions_to_terminate,
            replay.interactions_to_terminate);
}

TEST_P(ConsistencySeeds, LiveAndReplayedWaitingGreedyCoincide) {
  // Stronger: WG consults the meetTime oracle, which commits randomness
  // AHEAD of the execution. The replay (fixed-sequence index over the
  // final committed prefix) must still agree at every step.
  const std::size_t n = 12;
  const auto tau = static_cast<Time>(
      util::closed_form::waitingGreedyTau(n));

  adversary::RandomizedAdversary live(n, GetParam() ^ 0xABCD);
  auto live_index = live.makeMeetTimeIndex(0);
  algorithms::WaitingGreedy wg_live(live_index, tau);
  core::Engine engine({n, 0}, core::AggregationFunction::count());
  const auto live_result = engine.run(wg_live, live);
  ASSERT_TRUE(live_result.terminated);

  const auto committed = live.lazySequence().committed();
  dynagraph::MeetTimeIndex replay_index(committed, 0, n);
  algorithms::WaitingGreedy wg_replay(replay_index, tau);
  const auto replay = testing::runOn(wg_replay, committed, n, 0);
  EXPECT_EQ(live_result.schedule, replay.schedule);
}

TEST_P(ConsistencySeeds, FullKnowledgeOfCommittedPrefixIsOptimalLive) {
  // Materialize enough committed randomness, hand it to the full-knowledge
  // algorithm, and run it LIVE against the same adversary: it must land
  // exactly on the offline optimum of the committed prefix.
  const std::size_t n = 10;
  adversary::RandomizedAdversary live(n, GetParam() + 17);
  live.lazySequence().ensure(8 * n * n);
  const auto committed = live.lazySequence().committed();
  const auto opt = analysis::optCompletion(committed, n, 0);
  ASSERT_NE(opt, dynagraph::kNever);

  algorithms::FullKnowledgeOptimal fk(committed);
  core::Engine engine({n, 0}, core::AggregationFunction::count());
  const auto r = engine.run(fk, live);
  ASSERT_TRUE(r.terminated);
  EXPECT_EQ(r.last_transmission_time, opt);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConsistencySeeds,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

TEST(Consistency, MeetTimeOracleNeverLiesAboutTheFuture) {
  // Every oracle answer, queried during a live run, must match what the
  // committed sequence eventually shows.
  const std::size_t n = 8;
  adversary::RandomizedAdversary adv(n, 2024);
  auto index = adv.makeMeetTimeIndex(0);
  std::vector<std::pair<Time, Time>> claims;  // (query time, claimed meet)
  for (Time t = 0; t < 200; ++t) {
    const Time m = index.meetTime(3, t);
    if (m != dynagraph::kNever) claims.emplace_back(t, m);
  }
  const auto& committed = adv.lazySequence().committed();
  for (const auto& [t, m] : claims) {
    ASSERT_LT(m, committed.length());
    EXPECT_EQ(committed.at(m), core::Interaction(0, 3));
    // And nothing earlier: no {0,3} interaction strictly between t and m.
    for (Time x = t + 1; x < m; ++x)
      EXPECT_NE(committed.at(x), core::Interaction(0, 3));
  }
}

}  // namespace
}  // namespace doda
