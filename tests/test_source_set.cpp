#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/data.hpp"
#include "util/rng.hpp"

namespace doda::core {
namespace {

std::vector<NodeId> sorted(std::vector<NodeId> v) {
  std::sort(v.begin(), v.end());
  return v;
}

TEST(SourceSet, EmptyAndSingleton) {
  SourceSet empty;
  EXPECT_EQ(empty.size(), 0u);
  EXPECT_TRUE(empty.empty());
  EXPECT_FALSE(empty.contains(0));

  SourceSet s(7);
  EXPECT_EQ(s.size(), 1u);
  EXPECT_TRUE(s.contains(7));
  EXPECT_FALSE(s.contains(6));
  EXPECT_TRUE(s.isInline());
  EXPECT_EQ(s.toSortedVector(), std::vector<NodeId>{7});
}

TEST(SourceSet, StaysInlineUpToCapacityThenSpills) {
  SourceSet s(0);
  for (NodeId id = 1; id < SourceSet::kInlineCapacity; ++id) s.insert(id);
  EXPECT_TRUE(s.isInline());
  EXPECT_EQ(s.size(), SourceSet::kInlineCapacity);

  s.insert(1000);  // crossover: one past the inline capacity
  EXPECT_FALSE(s.isInline());
  EXPECT_EQ(s.size(), SourceSet::kInlineCapacity + 1);
  for (NodeId id = 0; id < SourceSet::kInlineCapacity; ++id)
    EXPECT_TRUE(s.contains(id));
  EXPECT_TRUE(s.contains(1000));
  EXPECT_FALSE(s.contains(999));
}

TEST(SourceSet, MergeCrossesRepresentations) {
  // inline + inline staying inline
  SourceSet a(0);
  SourceSet b(1);
  a.mergeDisjoint(b);
  EXPECT_TRUE(a.isInline());
  EXPECT_EQ(a.toSortedVector(), (std::vector<NodeId>{0, 1}));

  // inline + inline forced to spill
  SourceSet c(10);
  for (NodeId id = 11; id < 10 + SourceSet::kInlineCapacity; ++id)
    c.insert(id);
  SourceSet d(90);
  d.insert(91);
  c.mergeDisjoint(d);
  EXPECT_FALSE(c.isInline());
  EXPECT_EQ(c.size(), SourceSet::kInlineCapacity + 2);
  EXPECT_TRUE(c.contains(91));
  EXPECT_TRUE(c.contains(10));

  // spilled + inline
  SourceSet e(200);
  c.mergeDisjoint(e);
  EXPECT_TRUE(c.contains(200));

  // inline + spilled
  SourceSet f(300);
  f.mergeDisjoint(c);
  EXPECT_FALSE(f.isInline());
  EXPECT_EQ(f.size(), c.size() + 1);
  EXPECT_TRUE(f.contains(300));
  EXPECT_TRUE(f.contains(10));

  // spilled + spilled
  SourceSet g(400);
  for (NodeId id = 401; id < 420; ++id) g.insert(id);
  ASSERT_FALSE(g.isInline());
  f.mergeDisjoint(g);
  EXPECT_EQ(f.size(), c.size() + 1 + 20);
  EXPECT_TRUE(f.contains(419));
}

TEST(SourceSet, OverlapThrowsAndLeavesTargetIntact) {
  SourceSet a(0);
  a.insert(5);
  SourceSet dup(5);
  EXPECT_THROW(a.mergeDisjoint(dup), std::invalid_argument);
  EXPECT_EQ(a.toSortedVector(), (std::vector<NodeId>{0, 5}));

  // Overlap detection across every representation pairing.
  SourceSet big(100);
  for (NodeId id = 101; id < 130; ++id) big.insert(id);
  ASSERT_FALSE(big.isInline());
  SourceSet small_hit(115);
  EXPECT_THROW(big.mergeDisjoint(small_hit), std::invalid_argument);
  EXPECT_THROW(small_hit.mergeDisjoint(big), std::invalid_argument);
  SourceSet big_hit(129);
  for (NodeId id = 200; id < 220; ++id) big_hit.insert(id);
  ASSERT_FALSE(big_hit.isInline());
  EXPECT_THROW(big.mergeDisjoint(big_hit), std::invalid_argument);
  EXPECT_EQ(big.size(), 30u);

  EXPECT_THROW(big.mergeDisjoint(big), std::invalid_argument);
  EXPECT_THROW(a.insert(5), std::invalid_argument);
}

TEST(SourceSet, RejectedMergeAtInlineCapacityLeavesTargetInline) {
  // The engine rolls a faulty (Byzantine-replay) transmission back by
  // never starting the merge: a rejected mergeDisjoint must not mutate
  // the target even partially. The dangerous spot is the inline->bitset
  // crossover — at exactly kInlineCapacity (8) ids the next accepted id
  // spills the representation, so a lazily-checked merge would have
  // spilled (or half-copied) before noticing the overlap.
  SourceSet target(0);
  for (NodeId id = 1; id < SourceSet::kInlineCapacity; ++id)
    target.insert(id);
  ASSERT_EQ(target.size(), SourceSet::kInlineCapacity);  // exactly 8
  ASSERT_TRUE(target.isInline());

  // The incoming set overlaps only at its *last* id: everything before
  // it is mergeable, so any eager copy would already have crossed over.
  SourceSet incoming(20);
  incoming.insert(21);
  incoming.insert(7);  // duplicate of target's last inline id
  ASSERT_TRUE(target.intersects(incoming));
  EXPECT_THROW(target.mergeDisjoint(incoming), std::invalid_argument);
  EXPECT_EQ(target.size(), SourceSet::kInlineCapacity);
  EXPECT_TRUE(target.isInline());
  EXPECT_EQ(target.toSortedVector(),
            (std::vector<NodeId>{0, 1, 2, 3, 4, 5, 6, 7}));

  // A clean retransmission after the rollback merges normally and is
  // what finally crosses the representation boundary.
  SourceSet retry(20);
  retry.insert(21);
  target.mergeDisjoint(retry);
  EXPECT_EQ(target.size(), SourceSet::kInlineCapacity + 2);
  EXPECT_FALSE(target.isInline());
  EXPECT_TRUE(target.contains(20));
  EXPECT_TRUE(target.contains(21));
}

TEST(SourceSet, RejectedMergeJustPastCrossoverLeavesBitsetIntact) {
  // Same fault-rollback contract one id past the crossover: at exactly 9
  // ids the set has just spilled; a rejected merge must leave the bitset
  // bit-for-bit intact (and the set spilled).
  SourceSet target(0);
  for (NodeId id = 1; id <= SourceSet::kInlineCapacity; ++id)
    target.insert(id);
  ASSERT_EQ(target.size(), SourceSet::kInlineCapacity + 1);  // exactly 9
  ASSERT_FALSE(target.isInline());
  const auto before = target.toSortedVector();

  SourceSet poisoned_replay(40);
  for (NodeId id = 41; id < 50; ++id) poisoned_replay.insert(id);
  poisoned_replay.insert(8);  // the id that caused the spill
  EXPECT_THROW(target.mergeDisjoint(poisoned_replay),
               std::invalid_argument);
  EXPECT_EQ(target.toSortedVector(), before);
  EXPECT_FALSE(target.isInline());

  // The target is still fully usable: disjoint merge + queries behave.
  SourceSet fresh(60);
  target.mergeDisjoint(fresh);
  EXPECT_EQ(target.size(), before.size() + 1);
  EXPECT_TRUE(target.contains(60));
  EXPECT_FALSE(target.contains(59));
}

TEST(SourceSet, ResetReturnsToInlineAndReusesCapacity) {
  SourceSet s(0);
  for (NodeId id = 1; id < 40; ++id) s.insert(id);
  ASSERT_FALSE(s.isInline());
  s.reset(3);
  EXPECT_TRUE(s.isInline());
  EXPECT_EQ(s.size(), 1u);
  EXPECT_TRUE(s.contains(3));
  EXPECT_FALSE(s.contains(0));
  // A reused set behaves exactly like a fresh one.
  SourceSet fresh(3);
  EXPECT_EQ(s, fresh);
  s.insert(17);
  EXPECT_EQ(s.toSortedVector(), (std::vector<NodeId>{3, 17}));
}

TEST(SourceSet, EqualityIsRepresentationIndependent) {
  SourceSet spilled(0);
  for (NodeId id = 1; id <= SourceSet::kInlineCapacity; ++id)
    spilled.insert(id);
  ASSERT_FALSE(spilled.isInline());
  spilled.reset(1);
  SourceSet inline_one(1);
  EXPECT_EQ(spilled, inline_one);
  EXPECT_EQ(inline_one, spilled);
  inline_one.insert(2);
  EXPECT_FALSE(spilled == inline_one);
}

TEST(SourceSet, RandomizedMergesMatchSortedVectorReference) {
  // Fuzz the disjoint-merge tree against the old sorted-vector semantics:
  // partition random ids into k sets, merge them pairwise in random order,
  // and compare the survivor with a std::merge-based reference fold.
  util::Rng rng(0x50fa);
  for (int round = 0; round < 40; ++round) {
    const std::size_t universe = 2 + rng.below(300);
    std::vector<NodeId> ids(universe);
    for (std::size_t i = 0; i < universe; ++i)
      ids[i] = static_cast<NodeId>(i);
    rng.shuffle(ids);
    const std::size_t used = 1 + rng.below(universe);

    const std::size_t parts = 1 + rng.below(8);
    std::vector<SourceSet> sets(parts);
    std::vector<std::vector<NodeId>> reference(parts);
    for (std::size_t i = 0; i < used; ++i) {
      const std::size_t p = rng.below(parts);
      if (reference[p].empty())
        sets[p] = SourceSet(ids[i]);
      else
        sets[p].insert(ids[i]);
      reference[p].push_back(ids[i]);
    }

    // Fold every non-empty part into the first non-empty one.
    std::size_t target = parts;
    for (std::size_t p = 0; p < parts; ++p) {
      if (reference[p].empty()) continue;
      if (target == parts) {
        target = p;
        continue;
      }
      sets[target].mergeDisjoint(sets[p]);
      std::vector<NodeId> merged;
      std::sort(reference[p].begin(), reference[p].end());
      std::sort(reference[target].begin(), reference[target].end());
      std::merge(reference[target].begin(), reference[target].end(),
                 reference[p].begin(), reference[p].end(),
                 std::back_inserter(merged));
      reference[target] = std::move(merged);
      ASSERT_EQ(sets[target].toSortedVector(), reference[target])
          << "round " << round;
      ASSERT_EQ(sets[target].size(), reference[target].size());
    }
    ASSERT_NE(target, parts);
    for (NodeId id : reference[target])
      EXPECT_TRUE(sets[target].contains(id));
    EXPECT_EQ(sorted(reference[target]), sets[target].toSortedVector());
  }
}

TEST(Datum, ContainsSourceDelegatesToSet) {
  auto d = Datum::origin(4, 1.0);
  EXPECT_TRUE(d.containsSource(4));
  EXPECT_FALSE(d.containsSource(5));
  AggregationFunction::count().aggregateInto(d, Datum::origin(9, 1.0));
  EXPECT_TRUE(d.containsSource(9));
  EXPECT_DOUBLE_EQ(d.value, 2.0);
}

}  // namespace
}  // namespace doda::core
