#include "sim/parallel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>

#include "algorithms/gathering.hpp"
#include "algorithms/waiting_greedy.hpp"
#include "sim/experiment.hpp"
#include "util/rng.hpp"

namespace doda::sim {
namespace {

AlgorithmFactory gatheringFactory() {
  return [](TrialContext&) {
    return std::make_unique<algorithms::Gathering>();
  };
}

AlgorithmFactory waitingGreedyFactory(core::Time tau) {
  return [tau](TrialContext& context) {
    return std::make_unique<algorithms::WaitingGreedy>(context.meet_time,
                                                       tau);
  };
}

/// The executor's headline contract: identical statistics for every thread
/// count. EXPECT_EQ on doubles on purpose — the fold order is fixed, so
/// the results must be bit-identical, not merely close.
void expectIdentical(const MeasureResult& a, const MeasureResult& b) {
  EXPECT_EQ(a.interactions.count(), b.interactions.count());
  EXPECT_EQ(a.interactions.mean(), b.interactions.mean());
  EXPECT_EQ(a.interactions.variance(), b.interactions.variance());
  EXPECT_EQ(a.interactions.min(), b.interactions.min());
  EXPECT_EQ(a.interactions.max(), b.interactions.max());
  EXPECT_EQ(a.cost.count(), b.cost.count());
  EXPECT_EQ(a.cost.mean(), b.cost.mean());
  EXPECT_EQ(a.cost.variance(), b.cost.variance());
  EXPECT_EQ(a.failed_trials, b.failed_trials);
}

TEST(ParallelDeterminism, MeasureRandomizedIdenticalAcrossThreadCounts) {
  MeasureConfig config;
  config.node_count = 12;
  config.trials = 24;
  config.seed = 2026;
  config.threads = 1;
  const auto serial = measureRandomized(config, gatheringFactory());
  ASSERT_GT(serial.interactions.count(), 0u);
  for (std::size_t threads : {2u, 8u}) {
    config.threads = threads;
    expectIdentical(serial, measureRandomized(config, gatheringFactory()));
  }
}

TEST(ParallelDeterminism, MeasureRandomizedWithOracleAlgorithm) {
  // WaitingGreedy exercises the meetTime oracle (and thus the monotone
  // cursors) inside worker threads.
  MeasureConfig config;
  config.node_count = 16;
  config.trials = 16;
  config.seed = 7;
  config.threads = 1;
  const auto factory = waitingGreedyFactory(180);
  const auto serial = measureRandomized(config, factory);
  for (std::size_t threads : {2u, 8u}) {
    config.threads = threads;
    expectIdentical(serial, measureRandomized(config, factory));
  }
}

TEST(ParallelDeterminism, MeasureWithCostIdenticalAcrossThreadCounts) {
  MeasureConfig config;
  config.node_count = 8;
  config.trials = 12;
  config.seed = 99;
  config.threads = 1;
  const auto serial = measureWithCost(config, 64, gatheringFactory());
  ASSERT_GT(serial.cost.count(), 0u);
  for (std::size_t threads : {2u, 8u}) {
    config.threads = threads;
    expectIdentical(serial, measureWithCost(config, 64, gatheringFactory()));
  }
}

TEST(ParallelDeterminism, MeasureOfflineOptimalIdenticalAcrossThreadCounts) {
  MeasureConfig config;
  config.node_count = 8;
  config.trials = 10;
  config.seed = 123;
  config.threads = 1;
  const auto serial = measureOfflineOptimal(config);
  ASSERT_GT(serial.interactions.count(), 0u);
  for (std::size_t threads : {2u, 8u}) {
    config.threads = threads;
    expectIdentical(serial, measureOfflineOptimal(config));
  }
}

TEST(ParallelDeterminism, ZipfAdversaryIdenticalAcrossThreadCounts) {
  MeasureConfig config;
  config.node_count = 10;
  config.trials = 12;
  config.seed = 5;
  config.zipf_exponent = 0.8;
  config.threads = 1;
  const auto serial = measureRandomized(config, gatheringFactory());
  config.threads = 8;
  expectIdentical(serial, measureRandomized(config, gatheringFactory()));
}

TEST(RunTrials, SeedsDependOnIndexOnly) {
  // Record the seed each trial sees and check it matches the master draw.
  util::Rng master(4242);
  std::vector<std::uint64_t> expected(20);
  for (auto& s : expected) s = master();

  std::vector<std::uint64_t> seen(20, 0);
  runTrials(20, 4242, 4,
            [&](std::size_t trial, std::uint64_t seed,
                core::Engine::Scratch&) {
              seen[trial] = seed;
              TrialOutcome outcome;
              outcome.success = true;
              outcome.interactions = static_cast<double>(trial);
              return outcome;
            });
  EXPECT_EQ(seen, expected);
}

TEST(RunTrials, FoldsFailuresAndCosts) {
  const auto result = runTrials(
      10, 1, 4,
      [](std::size_t trial, std::uint64_t, core::Engine::Scratch&) {
        if (trial % 2 == 0) return TrialOutcome::failure();
        TrialOutcome outcome;
        outcome.success = true;
        outcome.interactions = static_cast<double>(trial);
        outcome.cost = 2.0;
        outcome.has_cost = true;
        return outcome;
      });
  EXPECT_EQ(result.failed_trials, 5u);
  EXPECT_EQ(result.interactions.count(), 5u);
  EXPECT_DOUBLE_EQ(result.interactions.mean(), 5.0);  // (1+3+5+7+9)/5
  EXPECT_EQ(result.cost.count(), 5u);
  EXPECT_DOUBLE_EQ(result.cost.mean(), 2.0);
}

TEST(RunTrials, PropagatesTrialExceptions) {
  auto boom = [](std::size_t trial, std::uint64_t,
                 core::Engine::Scratch&) -> TrialOutcome {
    if (trial == 3) throw std::runtime_error("trial 3 exploded");
    TrialOutcome outcome;
    outcome.success = true;
    return outcome;
  };
  EXPECT_THROW(runTrials(8, 1, 4, boom), std::runtime_error);
  EXPECT_THROW(runTrials(8, 1, 1, boom), std::runtime_error);
}

TEST(RunTrials, ZeroTrialsIsEmpty) {
  const auto result =
      runTrials(0, 1, 0, [](std::size_t, std::uint64_t,
                            core::Engine::Scratch&) { return TrialOutcome(); });
  EXPECT_EQ(result.interactions.count(), 0u);
  EXPECT_EQ(result.failed_trials, 0u);
}

TEST(ResolveThreads, KnobSemantics) {
  EXPECT_EQ(resolveThreads(1, 100), 1u);
  EXPECT_EQ(resolveThreads(4, 100), 4u);
  EXPECT_EQ(resolveThreads(4, 2), 2u);   // clamp to trial count
  EXPECT_GE(resolveThreads(0, 100), 1u);  // auto resolves to >= 1
}

TEST(MeasureResultMerge, MatchesOrderedFold) {
  // Welford-merge of disjoint partials reproduces the one-shot
  // accumulation up to floating-point rounding.
  util::Rng rng(9);
  MeasureResult whole, left, right;
  for (int i = 0; i < 200; ++i) {
    const double x = rng.uniform() * 1000.0;
    whole.interactions.add(x);
    (i < 77 ? left : right).interactions.add(x);
  }
  left.failed_trials = 3;
  right.failed_trials = 4;
  left.merge(right);
  EXPECT_EQ(left.interactions.count(), whole.interactions.count());
  EXPECT_NEAR(left.interactions.mean(), whole.interactions.mean(), 1e-9);
  EXPECT_NEAR(left.interactions.variance(), whole.interactions.variance(),
              1e-6);
  EXPECT_EQ(left.failed_trials, 7u);
}

}  // namespace
}  // namespace doda::sim
