// Tests for the binary sharded trace store (dynagraph/trace_io) and the
// shard-parallel replay executor (sim/trace_replay): codec round-trips,
// record -> shard -> replay bit-identity with the in-memory synthetic run
// across thread counts, corrupt/truncated shard error paths, and the
// thread-safe bulk-built inverted timeline.

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <thread>
#include <vector>

#include "algorithms/gathering.hpp"
#include "algorithms/waiting_greedy.hpp"
#include "dynagraph/trace_io.hpp"
#include "dynagraph/traces.hpp"
#include "sim/trace_replay.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace doda {
namespace {

using dynagraph::Interaction;
using dynagraph::InteractionSequence;
using dynagraph::TraceShardReader;
using dynagraph::TraceStore;
using dynagraph::TraceStoreWriter;
using sim::MeasureConfig;
using sim::MeasureResult;

/// Fresh scratch directory under the test temp root. ctest runs each test
/// in its own process, possibly concurrently, so the name must be unique
/// per call *and* per process (tag + pid + counter).
std::string scratchDir(const std::string& tag) {
  static int counter = 0;
  const auto dir = std::filesystem::path(testing::TempDir()) /
                   ("doda_trace_" + tag + "_" + std::to_string(::getpid()) +
                    "_" + std::to_string(counter++));
  std::filesystem::remove_all(dir);
  return dir.string();
}

InteractionSequence randomSequence(std::size_t n, core::Time length,
                                   util::Rng& rng) {
  return dynagraph::traces::uniformRandom(n, length, rng);
}

void expectIdentical(const MeasureResult& a, const MeasureResult& b) {
  // EXPECT_EQ on doubles on purpose: the fold order is fixed, so results
  // must be bit-identical, not merely close.
  EXPECT_EQ(a.interactions.count(), b.interactions.count());
  EXPECT_EQ(a.interactions.mean(), b.interactions.mean());
  EXPECT_EQ(a.interactions.variance(), b.interactions.variance());
  EXPECT_EQ(a.interactions.min(), b.interactions.min());
  EXPECT_EQ(a.interactions.max(), b.interactions.max());
  EXPECT_EQ(a.cost.count(), b.cost.count());
  EXPECT_EQ(a.cost.mean(), b.cost.mean());
  EXPECT_EQ(a.cost.variance(), b.cost.variance());
  EXPECT_EQ(a.failed_trials, b.failed_trials);
}

TEST(TraceStoreRoundTrip, PreservesEveryTrialAcrossShards) {
  const std::string dir = scratchDir("roundtrip");
  util::Rng rng(11);
  std::vector<InteractionSequence> trials;
  trials.push_back(InteractionSequence{});  // empty trial is representable
  trials.push_back(InteractionSequence{Interaction(0, 1)});
  for (std::size_t i = 0; i < 9; ++i)
    trials.push_back(randomSequence(24, 50 + i * 37, rng));

  {
    TraceStoreWriter writer(dir, 24, trials.size(), 4);
    for (const auto& trial : trials) writer.appendTrial(trial);
    writer.finish();
  }

  const auto store = TraceStore::open(dir);
  EXPECT_EQ(store.nodeCount(), 24u);
  EXPECT_EQ(store.trialCount(), trials.size());
  EXPECT_EQ(store.shardCount(), 4u);

  std::size_t global = 0;
  for (std::size_t s = 0; s < store.shardCount(); ++s) {
    auto reader = store.openShard(s);
    EXPECT_EQ(reader.header().base_trial, global);
    while (reader.beginTrial()) {
      ASSERT_LT(global, trials.size());
      EXPECT_EQ(reader.trialLength(), trials[global].length());
      EXPECT_EQ(reader.readRest(), trials[global]) << "trial " << global;
      ++global;
    }
  }
  EXPECT_EQ(global, trials.size());
}

TEST(TraceStoreRoundTrip, StreamingDecodeMatchesMaterialized) {
  const std::string dir = scratchDir("stream");
  util::Rng rng(7);
  const auto trial = randomSequence(50, 400, rng);
  {
    TraceStoreWriter writer(dir, 50, 1, 1);
    writer.appendTrial(trial);
    writer.finish();
  }
  auto reader = TraceStore::open(dir).openShard(0);
  ASSERT_TRUE(reader.beginTrial());
  for (core::Time t = 0; t < trial.length(); ++t) {
    const auto i = reader.next();
    ASSERT_TRUE(i.has_value()) << "t=" << t;
    EXPECT_EQ(*i, trial.at(t));
  }
  EXPECT_FALSE(reader.next().has_value());
  EXPECT_FALSE(reader.beginTrial());
}

TEST(TraceStoreRoundTrip, PartialConsumptionRealignsAtNextTrial) {
  const std::string dir = scratchDir("realign");
  util::Rng rng(3);
  std::vector<InteractionSequence> trials;
  for (int i = 0; i < 4; ++i) trials.push_back(randomSequence(16, 120, rng));
  {
    TraceStoreWriter writer(dir, 16, trials.size(), 1);
    for (const auto& trial : trials) writer.appendTrial(trial);
    writer.finish();
  }
  auto reader = TraceStore::open(dir).openShard(0);
  // Consume only 5 interactions of each trial; beginTrial must skip the
  // rest and land exactly on the next trial record.
  for (std::size_t k = 0; k < trials.size(); ++k) {
    ASSERT_TRUE(reader.beginTrial());
    for (int j = 0; j < 5; ++j) EXPECT_EQ(*reader.next(), trials[k].at(j));
  }
  EXPECT_FALSE(reader.beginTrial());
}

TEST(TraceStoreWriterErrors, RejectsDegenerateShapes) {
  EXPECT_THROW(TraceStoreWriter(scratchDir("bad"), 1, 4, 1),
               std::invalid_argument);  // < 2 nodes
  EXPECT_THROW(TraceStoreWriter(scratchDir("bad"), 8, 0, 1),
               std::invalid_argument);  // zero trials
  EXPECT_THROW(TraceStoreWriter(scratchDir("bad"), 8, 4, 0),
               std::invalid_argument);  // zero shards
  EXPECT_THROW(TraceStoreWriter(scratchDir("bad"), 8, 4, 5),
               std::invalid_argument);  // more shards than trials
}

TEST(TraceStoreWriterErrors, EnforcesDeclaredTrialCountAndNodeRange) {
  const std::string dir = scratchDir("writer_misuse");
  TraceStoreWriter writer(dir, 8, 2, 1);
  EXPECT_THROW(writer.appendTrial(InteractionSequence{Interaction(0, 8)}),
               std::invalid_argument);  // endpoint >= node_count
  writer.appendTrial(InteractionSequence{Interaction(0, 1)});
  EXPECT_THROW(writer.finish(), std::logic_error);  // one trial short
  writer.appendTrial(InteractionSequence{Interaction(2, 3)});
  EXPECT_THROW(writer.appendTrial(InteractionSequence{Interaction(4, 5)}),
               std::logic_error);  // more trials than declared
  writer.finish();

  // The rejected trial must not have left partial bytes behind: the store
  // still decodes cleanly after the caller caught and continued.
  const auto store = TraceStore::open(dir);
  EXPECT_EQ(store.trialCount(), 2u);
  auto reader = store.openShard(0);
  ASSERT_TRUE(reader.beginTrial());
  EXPECT_EQ(reader.readRest(), (InteractionSequence{Interaction(0, 1)}));
  ASSERT_TRUE(reader.beginTrial());
  EXPECT_EQ(reader.readRest(), (InteractionSequence{Interaction(2, 3)}));
  EXPECT_FALSE(reader.beginTrial());
}

// Corruption handling of the *v1* container (bare record stream, no
// payload checksums — decode-time range checks are the only defense).
// The v2 container's corruption paths live in test_trace_v2.cpp.
class TraceStoreCorruption : public testing::Test {
 protected:
  void SetUp() override {
    dir_ = scratchDir("corrupt");
    util::Rng rng(5);
    dynagraph::TraceWriterOptions v1;
    v1.format_version = dynagraph::kTraceFormatVersionV1;
    TraceStoreWriter writer(dir_, 12, 3, 2, v1);
    for (int i = 0; i < 3; ++i)
      writer.appendTrial(randomSequence(12, 200, rng));
    writer.finish();
    shard0_ = (std::filesystem::path(dir_) /
               dynagraph::traceShardFileName(0))
                  .string();
  }

  std::vector<char> readFile(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    return std::vector<char>((std::istreambuf_iterator<char>(in)),
                             std::istreambuf_iterator<char>());
  }

  void writeFile(const std::string& path, const std::vector<char>& bytes) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  std::string dir_;
  std::string shard0_;
};

TEST_F(TraceStoreCorruption, BadMagicIsRejected) {
  auto bytes = readFile(shard0_);
  bytes[0] = 'X';
  writeFile(shard0_, bytes);
  EXPECT_THROW(
      try { TraceStore::open(dir_); } catch (const std::runtime_error& e) {
        EXPECT_NE(std::string(e.what()).find("magic"), std::string::npos);
        throw;
      },
      std::runtime_error);
}

TEST_F(TraceStoreCorruption, FlippedHeaderFieldFailsChecksum) {
  auto bytes = readFile(shard0_);
  bytes[24] = static_cast<char>(bytes[24] ^ 0x01);  // node count field
  writeFile(shard0_, bytes);
  EXPECT_THROW(
      try { TraceShardReader reader(shard0_); } catch (
          const std::runtime_error& e) {
        EXPECT_NE(std::string(e.what()).find("checksum"), std::string::npos);
        throw;
      },
      std::runtime_error);
}

TEST_F(TraceStoreCorruption, TruncatedPayloadIsDetectedAtOpen) {
  auto bytes = readFile(shard0_);
  bytes.resize(bytes.size() - 17);
  writeFile(shard0_, bytes);
  EXPECT_THROW(
      try { TraceShardReader reader(shard0_); } catch (
          const std::runtime_error& e) {
        EXPECT_NE(std::string(e.what()).find("truncated"),
                  std::string::npos);
        throw;
      },
      std::runtime_error);
}

TEST_F(TraceStoreCorruption, TruncatedHeaderIsDetectedAtOpen) {
  auto bytes = readFile(shard0_);
  bytes.resize(dynagraph::kTraceHeaderSize / 2);
  writeFile(shard0_, bytes);
  EXPECT_THROW(TraceShardReader reader(shard0_), std::runtime_error);
}

TEST_F(TraceStoreCorruption, TrailingGarbageIsRejected) {
  auto bytes = readFile(shard0_);
  bytes.push_back('!');
  writeFile(shard0_, bytes);
  EXPECT_THROW(TraceShardReader reader(shard0_), std::runtime_error);
}

TEST_F(TraceStoreCorruption, CorruptPayloadEndpointIsRejected) {
  auto bytes = readFile(shard0_);
  // Stomp a run of payload bytes; the decoder must fail loudly (endpoint
  // out of range or varint overrun), never return garbage interactions.
  for (std::size_t i = dynagraph::kTraceHeaderSize + 3;
       i < bytes.size() && i < dynagraph::kTraceHeaderSize + 40; ++i)
    bytes[i] = static_cast<char>(0xff);
  writeFile(shard0_, bytes);
  TraceShardReader reader(shard0_);
  EXPECT_THROW(
      {
        while (reader.beginTrial()) reader.skipRest();
      },
      std::runtime_error);
}

TEST_F(TraceStoreCorruption, OversizedTrialLengthIsRejected) {
  auto bytes = readFile(shard0_);
  // Rewrite the first trial's length varint to a huge value: the reader
  // must reject it against the remaining payload size instead of letting
  // readRest() attempt a giant reserve.
  for (std::size_t i = 0; i < 8; ++i)
    bytes[dynagraph::kTraceHeaderSize + i] = static_cast<char>(0xff);
  bytes[dynagraph::kTraceHeaderSize + 8] = 0x7f;
  writeFile(shard0_, bytes);
  TraceShardReader reader(shard0_);
  EXPECT_THROW(reader.beginTrial(), std::runtime_error);
}

TEST_F(TraceStoreCorruption, MissingShardFailsStoreOpen) {
  std::filesystem::remove(std::filesystem::path(dir_) /
                          dynagraph::traceShardFileName(1));
  EXPECT_THROW(TraceStore::open(dir_), std::runtime_error);
}

TEST(TraceStoreErrors, MissingDirectoryFailsOpen) {
  EXPECT_THROW(TraceStore::open(scratchDir("missing")), std::runtime_error);
}

// ---------------------------------------------------------------- replay

sim::AlgorithmFactory gatheringFactory() {
  return [](sim::TrialContext&) {
    return std::make_unique<algorithms::Gathering>();
  };
}

sim::AlgorithmFactory waitingGreedyFactory(core::Time tau) {
  return [tau](sim::TrialContext& context) {
    return std::make_unique<algorithms::WaitingGreedy>(context.meet_time,
                                                       tau);
  };
}

TEST(TraceReplay, BitIdenticalToInMemorySyntheticRun) {
  // The acceptance contract: record -> shard -> replay reproduces the
  // equivalent in-memory synthetic run (measureWithCost on the same
  // config/length, which draws identical per-trial sequences from the
  // identical pre-drawn seeds) bit-for-bit, for threads 1, 2 and 8.
  MeasureConfig config;
  config.node_count = 10;
  config.trials = 14;
  config.seed = 20260728;
  const core::Time length = 2048;

  config.threads = 1;
  const auto in_memory = measureWithCost(config, length, gatheringFactory());
  ASSERT_EQ(in_memory.failed_trials, 0u)
      << "trace too short: in-memory run extended a sequence";
  ASSERT_GT(in_memory.interactions.count(), 0u);

  const std::string dir = scratchDir("equiv");
  sim::recordSynthetic(dir, config, length, 4);
  const auto store = TraceStore::open(dir);
  EXPECT_EQ(store.trialCount(), config.trials);

  for (std::size_t threads : {1u, 2u, 8u}) {
    config.threads = threads;
    expectIdentical(in_memory, measureReplayedWithCost(store, config,
                                                       gatheringFactory()));
  }
}

TEST(TraceReplay, OracleAlgorithmBitIdenticalAcrossThreadCounts) {
  // WaitingGreedy replays the recorded randomness through the meetTime
  // oracle inside worker threads.
  MeasureConfig config;
  config.node_count = 12;
  config.trials = 10;
  config.seed = 99;
  const core::Time length = 4096;

  config.threads = 1;
  const auto factory = waitingGreedyFactory(64);
  const auto in_memory = measureWithCost(config, length, factory);
  ASSERT_EQ(in_memory.failed_trials, 0u);

  const std::string dir = scratchDir("oracle");
  sim::recordSynthetic(dir, config, length, 5);
  const auto store = TraceStore::open(dir);
  for (std::size_t threads : {1u, 2u, 8u}) {
    config.threads = threads;
    expectIdentical(in_memory,
                    measureReplayedWithCost(store, config, factory));
  }
}

TEST(TraceReplay, StreamingMatchesMaterializedReplay) {
  MeasureConfig config;
  config.node_count = 10;
  config.trials = 12;
  config.seed = 4;
  const std::string dir = scratchDir("streamed");
  sim::recordSynthetic(dir, config, 2048, 3);
  const auto store = TraceStore::open(dir);

  sim::ReplayConfig replay;
  replay.threads = 1;
  const auto materialized =
      replayTrace(store, replay, gatheringFactory());
  ASSERT_GT(materialized.interactions.count(), 0u);

  const auto streamed_factory = [](const core::SystemInfo&) {
    return std::make_unique<algorithms::Gathering>();
  };
  for (std::size_t threads : {1u, 2u, 8u}) {
    replay.threads = threads;
    expectIdentical(materialized,
                    replayTraceStreaming(store, replay, streamed_factory));
  }
}

TEST(TraceReplay, ZipfWorkloadRoundTrips) {
  MeasureConfig config;
  config.node_count = 10;
  config.trials = 8;
  config.seed = 31;
  config.zipf_exponent = 0.9;
  const core::Time length = 4096;

  config.threads = 1;
  const auto in_memory = measureWithCost(config, length, gatheringFactory());
  ASSERT_EQ(in_memory.failed_trials, 0u);

  const std::string dir = scratchDir("zipf");
  sim::recordSynthetic(dir, config, length, 2);
  const auto store = TraceStore::open(dir);
  config.threads = 8;
  expectIdentical(in_memory, measureReplayedWithCost(store, config,
                                                     gatheringFactory()));
}

TEST(TraceReplay, NodeCountMismatchIsRejected) {
  MeasureConfig config;
  config.node_count = 8;
  config.trials = 4;
  const std::string dir = scratchDir("mismatch");
  sim::recordSynthetic(dir, config, 64, 2);
  const auto store = TraceStore::open(dir);
  config.node_count = 16;
  EXPECT_THROW(measureReplayed(store, config, gatheringFactory()),
               std::invalid_argument);
}

TEST(TraceReplay, BodyExceptionsPropagate) {
  MeasureConfig config;
  config.node_count = 8;
  config.trials = 6;
  const std::string dir = scratchDir("throwing");
  sim::recordSynthetic(dir, config, 64, 3);
  const auto store = TraceStore::open(dir);

  auto boom = [](std::size_t global_trial, TraceShardReader&,
                 core::Engine::Scratch&) -> sim::TrialOutcome {
    if (global_trial == 4) throw std::runtime_error("trial 4 exploded");
    sim::TrialOutcome outcome;
    outcome.success = true;
    return outcome;
  };
  EXPECT_THROW(sim::replayShards(store, 1, boom), std::runtime_error);
  EXPECT_THROW(sim::replayShards(store, 3, boom), std::runtime_error);
}

TEST(TraceReplay, FoldsInGlobalTrialOrderForAnyShardShape) {
  MeasureConfig config;
  config.node_count = 8;
  config.trials = 9;
  config.seed = 8;
  const std::string dir_a = scratchDir("shape_a");
  const std::string dir_b = scratchDir("shape_b");
  sim::recordSynthetic(dir_a, config, 128, 1);
  sim::recordSynthetic(dir_b, config, 128, 4);

  auto lengthOutcome = [](std::size_t, TraceShardReader& reader,
                          core::Engine::Scratch&) {
    sim::TrialOutcome outcome;
    outcome.success = true;
    outcome.interactions = static_cast<double>(reader.trialLength());
    return outcome;
  };
  // Same trials, different shard split, any thread count: identical fold.
  const auto mono = sim::replayShards(TraceStore::open(dir_a), 1, lengthOutcome);
  expectIdentical(mono,
                  sim::replayShards(TraceStore::open(dir_a), 8, lengthOutcome));
  expectIdentical(mono,
                  sim::replayShards(TraceStore::open(dir_b), 8, lengthOutcome));
}

// ------------------------------------------------- shared timeline, view

TEST(InteractionSequenceTimeline, BulkBuildAllowsConcurrentQueries) {
  util::Rng rng(17);
  const auto seq = randomSequence(40, 5000, rng);

  // Serial reference answers first (on a copy, so the shared instance's
  // timeline is untouched until buildTimelines()).
  const InteractionSequence reference = seq;
  std::vector<std::vector<core::Time>> expected(40);
  for (core::NodeId u = 0; u < 40; ++u)
    expected[u] = reference.timesInvolving(u);

  // ROADMAP item: analysis passes that share one sequence across threads
  // must be able to query it concurrently after one bulk build.
  seq.buildTimelines();
  std::vector<std::vector<core::Time>> got(40);
  std::vector<std::thread> pool;
  for (std::size_t w = 0; w < 8; ++w)
    pool.emplace_back([&, w] {
      for (std::size_t u = w; u < 40; u += 8)
        got[u] = seq.timesInvolving(static_cast<core::NodeId>(u));
    });
  for (auto& thread : pool) thread.join();
  EXPECT_EQ(got, expected);
}

TEST(InteractionSequenceView, ValidatesScheduleWithoutOwnedSequence) {
  // A schedule validated against a raw interaction buffer — the streamed
  // consumer path of validateConvergecastSchedule.
  const std::vector<Interaction> raw{Interaction(1, 2), Interaction(0, 1)};
  const dynagraph::InteractionSequenceView view(raw.data(), raw.size());
  const std::vector<core::TransmissionRecord> schedule{{0, 2, 1}, {1, 1, 0}};
  std::string error;
  EXPECT_TRUE(core::validateConvergecastSchedule(schedule, view, {3, 0},
                                                 &error))
      << error;
  EXPECT_EQ(view.materialize(),
            (InteractionSequence{Interaction(1, 2), Interaction(0, 1)}));
}

}  // namespace
}  // namespace doda
