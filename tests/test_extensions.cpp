// Tests for the extension modules: edge-Markov traces, trace I/O, and
// schedule metrics.

#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "algorithms/gathering.hpp"
#include "algorithms/waiting.hpp"
#include "analysis/schedule_metrics.hpp"
#include "dynagraph/edge_markov.hpp"
#include "dynagraph/trace_io.hpp"
#include "dynagraph/traces.hpp"
#include "test_helpers.hpp"
#include "util/rng.hpp"

namespace doda {
namespace {

using core::NodeId;
using core::Time;
using dynagraph::Interaction;
using dynagraph::InteractionSequence;
using dynagraph::kNever;
using testing::ix;
using testing::runOn;

TEST(EdgeMarkov, ProducesValidInteractions) {
  util::Rng rng(1);
  dynagraph::traces::EdgeMarkovConfig config;
  config.nodes = 10;
  config.steps = 200;
  const auto seq = dynagraph::traces::edgeMarkovTrace(config, rng);
  ASSERT_GT(seq.length(), 0u);
  for (Time t = 0; t < seq.length(); ++t) EXPECT_LT(seq.at(t).b(), 10u);
}

TEST(EdgeMarkov, StationaryDensityMatches) {
  util::Rng rng(2);
  dynagraph::traces::EdgeMarkovConfig config;
  config.nodes = 12;
  config.p_on = 0.10;
  config.p_off = 0.30;
  config.steps = 4000;
  const auto seq = dynagraph::traces::edgeMarkovTrace(config, rng);
  const double pairs = 12.0 * 11.0 / 2.0;
  const double density = static_cast<double>(seq.length()) /
                         (static_cast<double>(config.steps) * pairs);
  // Stationary density p_on / (p_on + p_off) = 0.25.
  EXPECT_NEAR(density, 0.25, 0.02);
}

TEST(EdgeMarkov, PersistentEdgesRepeat) {
  // With tiny p_off, an edge that appears tends to stay: consecutive steps
  // share most edges. We check temporal correlation via repeat fraction.
  util::Rng rng(3);
  dynagraph::traces::EdgeMarkovConfig config;
  config.nodes = 8;
  config.p_on = 0.02;
  config.p_off = 0.02;
  config.steps = 500;
  const auto seq = dynagraph::traces::edgeMarkovTrace(config, rng);
  std::map<Interaction, std::size_t> counts;
  for (Time t = 0; t < seq.length(); ++t) ++counts[seq.at(t)];
  // Some edge must persist for many steps.
  std::size_t max_count = 0;
  for (const auto& [edge, c] : counts) max_count = std::max(max_count, c);
  EXPECT_GT(max_count, 20u);
}

TEST(EdgeMarkov, ColdStartBeginsEmpty) {
  util::Rng rng(4);
  dynagraph::traces::EdgeMarkovConfig config;
  config.nodes = 6;
  config.p_on = 0.01;
  config.p_off = 0.5;
  config.steps = 1;
  config.stationary_start = false;
  const auto seq = dynagraph::traces::edgeMarkovTrace(config, rng);
  // One step from empty: expected edges = 15 * 0.01 = 0.15.
  EXPECT_LE(seq.length(), 3u);
}

TEST(EdgeMarkov, ValidatesConfig) {
  util::Rng rng(5);
  dynagraph::traces::EdgeMarkovConfig bad;
  bad.nodes = 1;
  EXPECT_THROW(dynagraph::traces::edgeMarkovTrace(bad, rng),
               std::invalid_argument);
  dynagraph::traces::EdgeMarkovConfig bad2;
  bad2.p_on = 0.0;
  EXPECT_THROW(dynagraph::traces::edgeMarkovTrace(bad2, rng),
               std::invalid_argument);
}

TEST(EdgeMarkov, GatheringAggregatesOverIt) {
  util::Rng rng(6);
  dynagraph::traces::EdgeMarkovConfig config;
  config.nodes = 10;
  config.steps = 2000;
  const auto seq = dynagraph::traces::edgeMarkovTrace(config, rng);
  algorithms::Gathering ga;
  const auto r = runOn(ga, seq, 10, 0);
  EXPECT_TRUE(r.terminated);
}

TEST(TraceIo, RoundTripsThroughStream) {
  util::Rng rng(7);
  const auto seq = dynagraph::traces::uniformRandom(9, 150, rng);
  std::stringstream ss;
  dynagraph::writeTrace(ss, seq, 9);
  const auto loaded = dynagraph::readTrace(ss);
  EXPECT_EQ(loaded.sequence, seq);
  EXPECT_EQ(loaded.node_count, 9u);
}

TEST(TraceIo, RoundTripsThroughFile) {
  const std::string path = ::testing::TempDir() + "/doda_trace_test.txt";
  util::Rng rng(8);
  const auto seq = dynagraph::traces::uniformRandom(5, 40, rng);
  dynagraph::saveTrace(path, seq);
  const auto loaded = dynagraph::loadTrace(path);
  EXPECT_EQ(loaded.sequence, seq);
  EXPECT_EQ(loaded.node_count, 5u);
  std::remove(path.c_str());
}

TEST(TraceIo, InfersNodeCountWithoutHeader) {
  std::stringstream ss("0 1\n2 7\n");
  const auto loaded = dynagraph::readTrace(ss);
  EXPECT_EQ(loaded.node_count, 8u);
  EXPECT_EQ(loaded.sequence.length(), 2u);
}

TEST(TraceIo, SkipsCommentsAndBlanks) {
  std::stringstream ss("# a comment\n\n0 1\n# another\n1 2\n");
  const auto loaded = dynagraph::readTrace(ss);
  EXPECT_EQ(loaded.sequence.length(), 2u);
}

TEST(TraceIo, HandlesCrlf) {
  std::stringstream ss("0 1\r\n1 2\r\n");
  const auto loaded = dynagraph::readTrace(ss);
  EXPECT_EQ(loaded.sequence.length(), 2u);
}

TEST(TraceIo, RejectsMalformedInput) {
  {
    std::stringstream ss("0\n");
    EXPECT_THROW(dynagraph::readTrace(ss), std::runtime_error);
  }
  {
    std::stringstream ss("0 0\n");
    EXPECT_THROW(dynagraph::readTrace(ss), std::runtime_error);
  }
  {
    std::stringstream ss("0 1 junk\n");
    EXPECT_THROW(dynagraph::readTrace(ss), std::runtime_error);
  }
  {
    std::stringstream ss("-1 2\n");
    EXPECT_THROW(dynagraph::readTrace(ss), std::runtime_error);
  }
  {
    std::stringstream ss("# nodes 2\n0 5\n");
    EXPECT_THROW(dynagraph::readTrace(ss), std::runtime_error);
  }
}

TEST(TraceIo, MissingFileThrows) {
  EXPECT_THROW(dynagraph::loadTrace("/no/such/file.trace"),
               std::runtime_error);
}

TEST(ScheduleMetrics, WaitingIsAllSingleHop) {
  util::Rng rng(9);
  const std::size_t n = 8;
  const auto seq = dynagraph::traces::uniformRandom(n, 100 * n * n, rng);
  algorithms::Waiting w;
  const auto r = runOn(w, seq, n, 0);
  ASSERT_TRUE(r.terminated);
  const auto m = analysis::analyzeSchedule(r.schedule, {n, 0});
  EXPECT_EQ(m.delivered_count, n - 1);
  EXPECT_EQ(m.max_hops, 1u);
  EXPECT_DOUBLE_EQ(m.mean_hops, 1.0);
}

TEST(ScheduleMetrics, GatheringFormsChains) {
  util::Rng rng(10);
  const std::size_t n = 24;
  const auto seq = dynagraph::traces::uniformRandom(n, 400 * n, rng);
  algorithms::Gathering ga;
  const auto r = runOn(ga, seq, n, 0);
  ASSERT_TRUE(r.terminated);
  const auto m = analysis::analyzeSchedule(r.schedule, {n, 0});
  EXPECT_EQ(m.delivered_count, n - 1);
  EXPECT_GT(m.max_hops, 1u);  // some datum was relayed
  EXPECT_GT(m.mean_hops, 1.0);
  EXPECT_EQ(m.completion_time, r.last_transmission_time);
}

TEST(ScheduleMetrics, PartialScheduleCountsParkedData) {
  // 2 -> 1 but 1 never delivers: origin 2's datum is parked at node 1.
  const std::vector<core::TransmissionRecord> schedule{{0, 2, 1}};
  const auto m = analysis::analyzeSchedule(schedule, {3, 0});
  EXPECT_EQ(m.delivered_count, 0u);
  EXPECT_FALSE(m.delivered[1]);
  EXPECT_FALSE(m.delivered[2]);
  EXPECT_TRUE(m.delivered[0]);  // the sink trivially holds its own datum
}

TEST(ScheduleMetrics, HandCraftedChain) {
  // 3 -> 2 (t0), 2 -> 1 (t1), 1 -> 0 (t2): origin 3 takes 3 hops.
  const std::vector<core::TransmissionRecord> schedule{
      {0, 3, 2}, {1, 2, 1}, {2, 1, 0}};
  const auto m = analysis::analyzeSchedule(schedule, {4, 0});
  EXPECT_EQ(m.delivered_count, 3u);
  EXPECT_EQ(m.hops[3], 3u);
  EXPECT_EQ(m.hops[2], 2u);
  EXPECT_EQ(m.hops[1], 1u);
  EXPECT_EQ(m.delivery_time[3], 2u);
  EXPECT_EQ(m.max_hops, 3u);
  EXPECT_DOUBLE_EQ(m.mean_hops, 2.0);
}

TEST(ScheduleMetrics, RejectsDoubleTransmit) {
  const std::vector<core::TransmissionRecord> schedule{{0, 1, 2}, {1, 1, 0}};
  EXPECT_THROW(analysis::analyzeSchedule(schedule, {3, 0}),
               std::invalid_argument);
}

}  // namespace
}  // namespace doda
