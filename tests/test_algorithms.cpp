#include <gtest/gtest.h>

#include <set>

#include "algorithms/full_knowledge.hpp"
#include "algorithms/future_aware.hpp"
#include "algorithms/gathering.hpp"
#include "algorithms/random_policy.hpp"
#include "algorithms/waiting.hpp"
#include "algorithms/waiting_greedy.hpp"
#include "analysis/convergecast.hpp"
#include "dynagraph/meet_time_index.hpp"
#include "dynagraph/traces.hpp"
#include "test_helpers.hpp"
#include "util/rng.hpp"

namespace doda::algorithms {
namespace {

using core::NodeId;
using core::Time;
using dynagraph::InteractionSequence;
using dynagraph::kNever;
using dynagraph::MeetTimeIndex;
using testing::ix;
using testing::runOn;

TEST(Waiting, OnlyTransmitsToSink) {
  Waiting w;
  const InteractionSequence seq{ix(1, 2), ix(2, 3), ix(0, 2), ix(0, 1),
                                ix(0, 3)};
  const auto r = runOn(w, seq, 4, 0);
  EXPECT_TRUE(r.terminated);
  for (const auto& rec : r.schedule) EXPECT_EQ(rec.receiver, 0u);
  EXPECT_EQ(r.schedule.size(), 3u);
}

TEST(Waiting, NeverTerminatesWithoutSinkContact) {
  Waiting w;
  const auto seq = InteractionSequence{ix(1, 2), ix(2, 3)}.repeated(50);
  const auto r = runOn(w, seq, 4, 0);
  EXPECT_FALSE(r.terminated);
  EXPECT_TRUE(r.schedule.empty());
}

TEST(Gathering, AlwaysTransmitsTowardSinkOrSmallerId) {
  Gathering ga;
  const InteractionSequence seq{ix(2, 3), ix(1, 2), ix(0, 1)};
  const auto r = runOn(ga, seq, 4, 0);
  EXPECT_TRUE(r.terminated);
  ASSERT_EQ(r.schedule.size(), 3u);
  // {2,3}: u1 = 2 receives; {1,2}: 1 receives; {0,1}: sink receives.
  EXPECT_EQ(r.schedule[0], (core::TransmissionRecord{0, 3, 2}));
  EXPECT_EQ(r.schedule[1], (core::TransmissionRecord{1, 2, 1}));
  EXPECT_EQ(r.schedule[2], (core::TransmissionRecord{2, 1, 0}));
}

TEST(Gathering, ExactlyNMinusOneTransmissions) {
  util::Rng rng(4);
  for (std::size_t n : {3u, 5u, 9u, 17u}) {
    Gathering ga;
    const auto seq = dynagraph::traces::uniformRandom(n, 200 * n, rng);
    const auto r = runOn(ga, seq, n, 0);
    ASSERT_TRUE(r.terminated) << "n=" << n;
    EXPECT_EQ(r.schedule.size(), n - 1);
  }
}

TEST(Metadata, NamesAndKnowledge) {
  Waiting w;
  Gathering ga;
  EXPECT_EQ(w.name(), "Waiting");
  EXPECT_EQ(ga.name(), "Gathering");
  EXPECT_EQ(w.knowledge(), "none");
  EXPECT_TRUE(w.isOblivious());
  EXPECT_TRUE(ga.isOblivious());
}

TEST(WaitingGreedy, LaterMeeterTransmits) {
  // Sink 0. Node 1 meets sink at t=3; node 2 meets sink at t=5.
  const InteractionSequence seq{ix(1, 2), ix(1, 2), ix(1, 2), ix(0, 1),
                                ix(1, 2), ix(0, 2)};
  MeetTimeIndex idx(seq, 0, 3);
  WaitingGreedy wg(idx, /*tau=*/4);
  // At t=0: m1=3 <= m2=5, tau=4 < 5 -> receiver is node 1 (2 transmits).
  const auto r = runOn(wg, seq, 3, 0);
  ASSERT_TRUE(r.terminated);
  ASSERT_EQ(r.schedule.size(), 2u);
  EXPECT_EQ(r.schedule[0], (core::TransmissionRecord{0, 2, 1}));
  EXPECT_EQ(r.schedule[1], (core::TransmissionRecord{3, 1, 0}));
  EXPECT_EQ(wg.tau(), 4u);
}

TEST(WaitingGreedy, BothMeetEarlyMeansWait) {
  // Both nodes meet the sink before tau: nobody transmits at {1,2}.
  const InteractionSequence seq{ix(1, 2), ix(0, 1), ix(0, 2)};
  MeetTimeIndex idx(seq, 0, 3);
  WaitingGreedy wg(idx, /*tau=*/10);
  const auto r = runOn(wg, seq, 3, 0);
  EXPECT_TRUE(r.terminated);
  ASSERT_EQ(r.schedule.size(), 2u);
  // Each node delivered its own datum directly.
  EXPECT_EQ(r.schedule[0], (core::TransmissionRecord{1, 1, 0}));
  EXPECT_EQ(r.schedule[1], (core::TransmissionRecord{2, 2, 0}));
}

TEST(WaitingGreedy, SinkInteractionUsesIdentityMeetTime) {
  // At {0,1} with node 1 never meeting the sink again: m(1)=kNever > tau,
  // so node 1 transmits to the sink.
  const InteractionSequence seq{ix(0, 1), ix(0, 2)};
  MeetTimeIndex idx(seq, 0, 3);
  WaitingGreedy wg(idx, 1);
  const auto r = runOn(wg, seq, 3, 0);
  EXPECT_TRUE(r.terminated);
  EXPECT_EQ(r.schedule.size(), 2u);
}

TEST(WaitingGreedy, SinkRefusedWhenNodeMeetsAgainSoon) {
  // Node 1 meets the sink at t=0 AND t=1 (before tau=5): at t=0 the
  // algorithm waits (m1 = 1 <= tau); at t=1, m1 = kNever > tau: transmit.
  const InteractionSequence seq{ix(0, 1), ix(0, 1), ix(0, 2)};
  MeetTimeIndex idx(seq, 0, 3);
  WaitingGreedy wg(idx, 5);
  const auto r = runOn(wg, seq, 3, 0);
  ASSERT_EQ(r.schedule.size(), 2u);
  EXPECT_EQ(r.schedule[0].time, 1u);  // waited at t=0
}

TEST(WaitingGreedy, TauZeroActsLikeGathering) {
  util::Rng rng(6);
  const std::size_t n = 8;
  const auto seq = dynagraph::traces::uniformRandom(n, 100 * n * n, rng);
  MeetTimeIndex idx(seq, 0, n);
  WaitingGreedy wg(idx, 0);
  const auto r = runOn(wg, seq, n, 0);
  ASSERT_TRUE(r.terminated);
  EXPECT_EQ(r.schedule.size(), n - 1);
}

TEST(WaitingGreedy, HugeTauActsLikeWaiting) {
  // With tau beyond every meeting, only direct-to-sink transfers happen.
  util::Rng rng(7);
  const std::size_t n = 6;
  const auto seq = dynagraph::traces::uniformRandom(n, 200 * n * n, rng);
  MeetTimeIndex idx(seq, 0, n);
  WaitingGreedy wg(idx, seq.length() + 1);
  const auto r = runOn(wg, seq, n, 0);
  ASSERT_TRUE(r.terminated);
  for (const auto& rec : r.schedule) EXPECT_EQ(rec.receiver, 0u);
}

TEST(WaitingGreedy, KnowledgeIsMeetTime) {
  const InteractionSequence seq{ix(0, 1)};
  MeetTimeIndex idx(seq, 0, 2);
  WaitingGreedy wg(idx, 1);
  EXPECT_EQ(wg.knowledge(), "meetTime");
}

TEST(RandomPolicy, TerminatesOnLongRandomSequences) {
  util::Rng rng(8);
  const std::size_t n = 6;
  const auto seq = dynagraph::traces::uniformRandom(n, 500 * n * n, rng);
  RandomPolicy rp(/*seed=*/99);
  const auto r = runOn(rp, seq, n, 0);
  EXPECT_TRUE(r.terminated);
  EXPECT_EQ(r.schedule.size(), n - 1);
}

TEST(RandomPolicy, ResetIsReproducible) {
  util::Rng rng(9);
  const auto seq = dynagraph::traces::uniformRandom(5, 4000, rng);
  RandomPolicy rp(1234);
  const auto r1 = runOn(rp, seq, 5, 0);
  const auto r2 = runOn(rp, seq, 5, 0);
  EXPECT_EQ(r1.schedule, r2.schedule);
}

TEST(FullKnowledge, CostIsAlwaysOne) {
  util::Rng rng(10);
  for (int trial = 0; trial < 10; ++trial) {
    const std::size_t n = 4 + rng.below(6);
    const auto seq = dynagraph::traces::uniformRandom(n, 100 * n, rng);
    if (analysis::optCompletion(seq, n, 0) == kNever) continue;
    FullKnowledgeOptimal fk(seq);
    const auto r = runOn(fk, seq, n, 0);
    ASSERT_TRUE(r.terminated);
    EXPECT_EQ(analysis::costOf(seq, n, 0, r.last_transmission_time), 1u);
    EXPECT_EQ(r.last_transmission_time,
              analysis::optCompletion(seq, n, 0));
  }
}

TEST(FullKnowledge, InfeasibleSequenceMeansNoTransmissions) {
  const InteractionSequence seq{ix(1, 2)};
  FullKnowledgeOptimal fk(seq);
  const auto r = runOn(fk, seq, 3, 0);
  EXPECT_FALSE(r.terminated);
  EXPECT_TRUE(r.schedule.empty());
  EXPECT_FALSE(fk.feasible());
}

TEST(FullKnowledge, HonorsStartOffset) {
  const InteractionSequence seq{ix(0, 1), ix(1, 2), ix(1, 2), ix(0, 1)};
  FullKnowledgeOptimal fk(seq, /*start=*/1);
  const auto r = runOn(fk, seq, 3, 0);
  ASSERT_TRUE(r.terminated);
  for (const auto& rec : r.schedule) EXPECT_GE(rec.time, 1u);
}

TEST(FutureAware, DisseminationTimeMatchesNaiveSimulation) {
  util::Rng rng(11);
  const std::size_t n = 8;
  const auto seq = dynagraph::traces::uniformRandom(n, 500, rng);
  FutureAware fa(seq);
  fa.reset({n, 0});

  // Naive reference: set-based epidemic merge.
  std::vector<std::set<NodeId>> knows(n);
  for (NodeId u = 0; u < n; ++u) knows[u].insert(u);
  Time t_star = kNever;
  for (Time t = 0; t < seq.length(); ++t) {
    const auto& i = seq.at(t);
    knows[i.a()].insert(knows[i.b()].begin(), knows[i.b()].end());
    knows[i.b()] = knows[i.a()];
    bool all = true;
    for (const auto& k : knows) all = all && k.size() == n;
    if (all) {
      t_star = t;
      break;
    }
  }
  EXPECT_EQ(fa.disseminationComplete(), t_star);
}

TEST(FutureAware, NoTransmissionBeforeDisseminationCompletes) {
  util::Rng rng(12);
  const std::size_t n = 6;
  const auto seq = dynagraph::traces::uniformRandom(n, 4000, rng);
  FutureAware fa(seq);
  const auto r = runOn(fa, seq, n, 0);
  ASSERT_TRUE(r.terminated);
  fa.reset({n, 0});
  for (const auto& rec : r.schedule)
    EXPECT_GT(rec.time, fa.disseminationComplete());
}

TEST(FutureAware, TerminatesAndScheduleValidates) {
  util::Rng rng(13);
  for (int trial = 0; trial < 8; ++trial) {
    const std::size_t n = 4 + rng.below(6);
    const auto seq = dynagraph::traces::uniformRandom(n, 300 * n, rng);
    FutureAware fa(seq);
    const auto r = runOn(fa, seq, n, 0);
    ASSERT_TRUE(r.terminated);
    std::string err;
    EXPECT_TRUE(core::validateConvergecastSchedule(r.schedule, seq,
                                                   {n, 0}, &err))
        << err;
  }
}

TEST(FutureAware, IsNotOblivious) {
  const InteractionSequence seq{ix(0, 1)};
  FutureAware fa(seq);
  EXPECT_FALSE(fa.isOblivious());
  EXPECT_EQ(fa.knowledge(), "future");
}

}  // namespace
}  // namespace doda::algorithms
