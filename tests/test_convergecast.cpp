#include "analysis/convergecast.hpp"

#include <gtest/gtest.h>

#include "analysis/convergecast_frontier.hpp"
#include "analysis/meetings.hpp"
#include "core/engine.hpp"
#include "dynagraph/traces.hpp"
#include "test_helpers.hpp"
#include "util/rng.hpp"

namespace doda::analysis {
namespace {

using dynagraph::kNever;
using testing::ix;

TEST(OptCompletion, SimpleChain) {
  // 2 -> 1 at t0, 1 -> 0 (sink) at t1: completion at time 1.
  const InteractionSequence seq{ix(1, 2), ix(0, 1)};
  EXPECT_EQ(optCompletion(seq, 3, 0), 1u);
}

TEST(OptCompletion, SkipsUselessPrefix) {
  const InteractionSequence seq{ix(1, 2), ix(1, 2), ix(1, 2), ix(0, 1)};
  // The last {1,2} (t=2) and {0,1} (t=3) suffice; earlier copies are moot.
  EXPECT_EQ(optCompletion(seq, 3, 0), 3u);
  EXPECT_EQ(optCompletion(seq, 3, 0, /*start=*/2), 3u);
}

TEST(OptCompletion, ImpossibleWindow) {
  const InteractionSequence seq{ix(0, 1), ix(1, 2)};
  // Once {0,1} has passed, node 2's data can never reach the sink.
  EXPECT_EQ(optCompletion(seq, 3, 0, /*start=*/0), kNever);
}

TEST(OptCompletion, OrderSensitivity) {
  // Convergecast needs increasing times toward the sink: {0,1} before
  // {1,2} is useless for node 2.
  const InteractionSequence bad{ix(0, 1), ix(1, 2), ix(0, 1)};
  EXPECT_EQ(optCompletion(bad, 3, 0), 2u);
}

TEST(OptCompletion, StartBeyondSequenceIsNever) {
  const InteractionSequence seq{ix(0, 1)};
  EXPECT_EQ(optCompletion(seq, 2, 0, 5), kNever);
}

TEST(OptCompletion, SinkOutOfRangeThrows) {
  const InteractionSequence seq{ix(0, 1)};
  EXPECT_THROW(optCompletion(seq, 2, 4), std::out_of_range);
  EXPECT_THROW(optCompletion(seq, 1, 0), std::invalid_argument);
}

TEST(OptimalSchedule, ValidAndEndsAtOpt) {
  util::Rng rng(9);
  const std::size_t n = 6;
  const auto seq = dynagraph::traces::uniformRandom(n, 200, rng);
  const auto end = optCompletion(seq, n, 0);
  ASSERT_NE(end, kNever);
  const auto sched = optimalSchedule(seq, n, 0);
  ASSERT_EQ(sched.size(), n - 1);
  std::string err;
  EXPECT_TRUE(core::validateConvergecastSchedule(sched, seq, {n, 0}, &err))
      << err;
  EXPECT_EQ(sched.back().time, end);
}

TEST(OptimalSchedule, EmptyWhenImpossible) {
  const InteractionSequence seq{ix(1, 2)};
  EXPECT_TRUE(optimalSchedule(seq, 3, 0).empty());
}

class OptVsBruteForce : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OptVsBruteForce, ReverseBroadcastMatchesExhaustiveSearch) {
  util::Rng rng(GetParam());
  for (int trial = 0; trial < 25; ++trial) {
    const std::size_t n = 3 + rng.below(4);          // 3..6 nodes
    const core::Time len = 4 + rng.below(14);        // 4..17 interactions
    const auto seq = dynagraph::traces::uniformRandom(n, len, rng);
    const core::NodeId sink = static_cast<core::NodeId>(rng.below(n));
    const core::Time start = rng.below(3);
    EXPECT_EQ(optCompletion(seq, n, sink, start),
              bruteForceOptCompletion(seq, n, sink, start))
        << "n=" << n << " len=" << len << " sink=" << sink
        << " start=" << start;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OptVsBruteForce,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11,
                                           12));

TEST(ConvergecastChain, SuccessiveWindowsAreDisjoint) {
  util::Rng rng(21);
  const std::size_t n = 5;
  const auto seq = dynagraph::traces::uniformRandom(n, 500, rng);
  const auto chain = convergecastChain(seq, n, 0);
  ASSERT_GE(chain.size(), 2u);
  for (std::size_t i = 0; i + 1 < chain.size(); ++i) {
    if (chain[i + 1] == kNever) break;
    EXPECT_LT(chain[i], chain[i + 1]);
    // T(i+1) really is opt(T(i)+1).
    EXPECT_EQ(chain[i + 1], optCompletion(seq, n, 0, chain[i] + 1));
  }
  EXPECT_EQ(chain.back(), kNever);  // a finite sequence always exhausts
}

TEST(ConvergecastChain, RespectsMaxTerms) {
  util::Rng rng(22);
  const auto seq = dynagraph::traces::uniformRandom(4, 500, rng);
  const auto chain = convergecastChain(seq, 4, 0, 3);
  EXPECT_LE(chain.size(), 3u);
}

TEST(CostOf, OptimalDurationHasCostOne) {
  util::Rng rng(23);
  const std::size_t n = 6;
  const auto seq = dynagraph::traces::uniformRandom(n, 300, rng);
  const auto opt = optCompletion(seq, n, 0);
  ASSERT_NE(opt, kNever);
  EXPECT_EQ(costOf(seq, n, 0, opt), 1u);
}

TEST(CostOf, SlowerTerminationCostsMore) {
  util::Rng rng(24);
  const std::size_t n = 5;
  const auto seq = dynagraph::traces::uniformRandom(n, 2000, rng);
  const auto chain = convergecastChain(seq, n, 0);
  ASSERT_GE(chain.size(), 3u);
  ASSERT_NE(chain[1], kNever);
  // Terminating just after T(1) but by T(2) costs exactly 2.
  EXPECT_EQ(costOf(seq, n, 0, chain[0] + 1), 2u);
  EXPECT_EQ(costOf(seq, n, 0, chain[1]), 2u);
}

TEST(CostOf, NonTerminationYieldsPaperIMax) {
  // cost of a never-terminating run = min{ i | T(i) = infinity }.
  util::Rng rng(25);
  const std::size_t n = 5;
  const auto seq = dynagraph::traces::uniformRandom(n, 400, rng);
  const auto chain = convergecastChain(seq, n, 0);
  EXPECT_EQ(costOf(seq, n, 0, kNever), chain.size());
}

TEST(CostOf, InvariantUnderDuplicatedInteractions) {
  // The paper motivates the cost as invariant under inserting duplicate
  // interactions: repeating the terminating prefix does not change cost.
  const InteractionSequence base{ix(1, 2), ix(1, 2), ix(0, 1), ix(0, 1)};
  auto padded = base;
  padded.appendAll(base);
  EXPECT_EQ(costOf(base, 3, 0, 2), costOf(padded, 3, 0, 2));
}

TEST(BruteForce, RejectsLargeInstances) {
  const InteractionSequence seq{ix(0, 1)};
  EXPECT_THROW(bruteForceOptCompletion(seq, 21, 0), std::invalid_argument);
}

TEST(ConvergecastFrontier, CoverTimesMatchPerNodeFeasibility) {
  // m(u) must be the minimal window end covering u — cross-checked by
  // running optCompletion on truncated prefixes.
  util::Rng rng(31);
  const std::size_t n = 6;
  const auto seq = dynagraph::traces::uniformRandom(n, 400, rng);
  ConvergecastFrontier frontier(seq, n, 0, 0);
  const auto opt = frontier.firstCompleteEnd();
  ASSERT_NE(opt, kNever);
  EXPECT_EQ(opt, optCompletion(seq, n, 0));
  EXPECT_TRUE(frontier.complete());
  EXPECT_EQ(frontier.coveredCount(), n);
  // opt is the max cover time, and truncating the sequence just below any
  // node's cover time makes that window infeasible.
  core::Time max_cover = 0;
  for (core::NodeId u = 1; u < n; ++u) {
    const auto c = frontier.coverTime(u);
    ASSERT_NE(c, kNever);
    max_cover = std::max(max_cover, c);
    if (c > 0) {
      EXPECT_EQ(optCompletion(seq.slice(0, c), n, 0), kNever)
          << "node " << u;
    }
  }
  EXPECT_EQ(max_cover, opt);
  EXPECT_EQ(frontier.coverTime(0), 0u);  // the sink is covered from start
}

TEST(ConvergecastFrontier, InducedScheduleIsValidAndOptimal) {
  util::Rng rng(32);
  core::ScheduleValidationScratch scratch;
  for (int trial = 0; trial < 10; ++trial) {
    const std::size_t n = 4 + rng.below(6);
    const auto seq = dynagraph::traces::uniformRandom(n, 200 * n, rng);
    ConvergecastFrontier frontier(seq, n, 0, 0);
    const auto opt = frontier.firstCompleteEnd();
    ASSERT_NE(opt, kNever);
    std::vector<TransmissionRecord> schedule;
    for (core::NodeId u = 1; u < n; ++u)
      schedule.push_back({frontier.reachTime(u), u, frontier.informerOf(u)});
    std::sort(schedule.begin(), schedule.end(),
              [](const TransmissionRecord& x, const TransmissionRecord& y) {
                return x.time < y.time;
              });
    std::string err;
    EXPECT_TRUE(core::validateConvergecastSchedule(schedule, seq, {n, 0},
                                                   scratch, &err))
        << err;
    EXPECT_EQ(schedule.back().time, opt);
  }
}

TEST(ConvergecastFrontier, ExhaustedSequenceReportsNever) {
  const InteractionSequence seq{ix(1, 2), ix(1, 2)};
  ConvergecastFrontier frontier(seq, 3, 0, 0);
  EXPECT_EQ(frontier.firstCompleteEnd(), kNever);
  EXPECT_FALSE(frontier.complete());
  EXPECT_LT(frontier.coveredCount(), 3u);
}

TEST(ConvergecastFrontier, SinkOutOfRangeThrows) {
  const InteractionSequence seq{ix(0, 1)};
  EXPECT_THROW(ConvergecastFrontier(seq, 2, 7, 0), std::out_of_range);
  ConvergecastFrontier bad(seq, 2, 0, 0);
  EXPECT_EQ(bad.firstCompleteEnd(), 0u);  // {0,1} at t=0 covers node 1
  EXPECT_THROW(optCompletion(seq, 1, 0), std::invalid_argument);
}

TEST(ValidateSchedule, ScratchOverloadMatchesAllocatingOverload) {
  util::Rng rng(33);
  core::ScheduleValidationScratch scratch;
  for (int trial = 0; trial < 12; ++trial) {
    const std::size_t n = 3 + rng.below(6);
    const auto seq = dynagraph::traces::uniformRandom(n, 60 * n, rng);
    auto sched = optimalSchedule(seq, n, 0);
    const bool feasible = !sched.empty();
    EXPECT_EQ(core::validateConvergecastSchedule(sched, seq, {n, 0},
                                                 scratch),
              feasible ? true : false);
    if (feasible) {
      // Corrupt the schedule; both overloads must agree on rejection.
      sched.front().time = seq.length();
      std::string e1, e2;
      const bool with_scratch = core::validateConvergecastSchedule(
          sched, seq, {n, 0}, scratch, &e1);
      const bool allocating =
          core::validateConvergecastSchedule(sched, seq, {n, 0}, &e2);
      EXPECT_EQ(with_scratch, allocating);
      EXPECT_EQ(e1, e2);
    }
  }
}

TEST(Meetings, DistinctSinkContactsCounts) {
  const InteractionSequence seq{ix(0, 1), ix(0, 1), ix(0, 2), ix(1, 2),
                                ix(0, 3)};
  EXPECT_EQ(distinctSinkContacts(seq, 0, 0), 0u);
  EXPECT_EQ(distinctSinkContacts(seq, 0, 2), 1u);
  EXPECT_EQ(distinctSinkContacts(seq, 0, 5), 3u);
  EXPECT_EQ(distinctSinkContacts(seq, 0, 99), 3u);
}

TEST(Meetings, FirstSinkContactTimes) {
  const InteractionSequence seq{ix(1, 2), ix(0, 2), ix(0, 2), ix(0, 3)};
  const auto first = firstSinkContact(seq, 4, 0);
  EXPECT_EQ(first[0], 0u);
  EXPECT_EQ(first[1], kNever);
  EXPECT_EQ(first[2], 1u);
  EXPECT_EQ(first[3], 3u);
}

}  // namespace
}  // namespace doda::analysis
