#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/rng.hpp"

namespace doda::util {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.ci95HalfWidth(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(42.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 42.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 42.0);
  EXPECT_DOUBLE_EQ(s.max(), 42.0);
}

TEST(RunningStats, KnownMeanAndVariance) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance with Bessel correction: sum sq dev = 32, n-1 = 7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  Rng rng(1);
  RunningStats whole, left, right;
  for (int i = 0; i < 500; ++i) {
    const double x = rng.uniform() * 100 - 50;
    whole.add(x);
    (i % 2 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-6);
  EXPECT_DOUBLE_EQ(left.min(), whole.min());
  EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

TEST(RunningStats, MergeManyPartitionsMatchesOneShot) {
  // Per-worker partials of a parallel measurement: fold the same samples
  // into k accumulators and merge them, for several partition shapes.
  for (std::size_t partitions : {2u, 3u, 8u, 16u}) {
    Rng rng(partitions);
    RunningStats whole;
    std::vector<RunningStats> parts(partitions);
    for (int i = 0; i < 400; ++i) {
      const double x = rng.uniform() * 1e6;
      whole.add(x);
      parts[static_cast<std::size_t>(i) % partitions].add(x);
    }
    RunningStats merged;
    for (const auto& part : parts) merged.merge(part);
    EXPECT_EQ(merged.count(), whole.count());
    EXPECT_NEAR(merged.mean(), whole.mean(), whole.mean() * 1e-12);
    EXPECT_NEAR(merged.variance(), whole.variance(),
                whole.variance() * 1e-9);
    EXPECT_DOUBLE_EQ(merged.min(), whole.min());
    EXPECT_DOUBLE_EQ(merged.max(), whole.max());
  }
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, empty;
  a.add(1.0);
  a.add(3.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  RunningStats b;
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(RunningStats, CiShrinksWithSamples) {
  RunningStats small, large;
  Rng rng(2);
  for (int i = 0; i < 10; ++i) small.add(rng.uniform());
  for (int i = 0; i < 1000; ++i) large.add(rng.uniform());
  EXPECT_GT(small.ci95HalfWidth(), large.ci95HalfWidth());
}

TEST(Summarize, EmptySample) {
  const auto s = summarize({});
  EXPECT_EQ(s.count, 0u);
}

TEST(Summarize, KnownValues) {
  const std::vector<double> xs{5, 1, 4, 2, 3};
  const auto s = summarize(xs);
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
}

TEST(Quantile, InterpolatesLinearly) {
  const std::vector<double> xs{0.0, 10.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.25), 2.5);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 10.0);
}

TEST(Quantile, EmptyThrows) {
  EXPECT_THROW(quantile({}, 0.5), std::invalid_argument);
}

TEST(FitPowerLaw, RecoversExactExponent) {
  std::vector<double> xs, ys;
  for (double x : {8.0, 16.0, 32.0, 64.0, 128.0}) {
    xs.push_back(x);
    ys.push_back(3.5 * std::pow(x, 1.75));
  }
  const auto fit = fitPowerLaw(xs, ys);
  EXPECT_NEAR(fit.slope, 1.75, 1e-9);
  EXPECT_NEAR(std::exp(fit.intercept), 3.5, 1e-6);
  EXPECT_NEAR(fit.r2, 1.0, 1e-12);
}

TEST(FitPowerLaw, RejectsBadInput) {
  EXPECT_THROW(fitPowerLaw(std::vector<double>{1.0},
                           std::vector<double>{1.0}),
               std::invalid_argument);
  EXPECT_THROW(fitPowerLaw(std::vector<double>{1.0, -2.0},
                           std::vector<double>{1.0, 2.0}),
               std::invalid_argument);
  EXPECT_THROW(fitPowerLaw(std::vector<double>{2.0, 2.0},
                           std::vector<double>{1.0, 2.0}),
               std::invalid_argument);
}

TEST(Harmonic, KnownValues) {
  EXPECT_DOUBLE_EQ(harmonic(0), 0.0);
  EXPECT_DOUBLE_EQ(harmonic(1), 1.0);
  EXPECT_DOUBLE_EQ(harmonic(2), 1.5);
  EXPECT_NEAR(harmonic(100), std::log(100.0) + 0.5772156649, 0.006);
}

TEST(ClosedForm, BroadcastMatchesFormula) {
  // Thm 8: E = (n-1) H(n-1); n = 4 -> 3 * (1 + 1/2 + 1/3) = 5.5.
  EXPECT_NEAR(closed_form::broadcastExpected(4), 5.5, 1e-12);
}

TEST(ClosedForm, WaitingMatchesFormula) {
  // Thm 9: E[X_W] = n(n-1)/2 H(n-1); n = 3 -> 3 * 1.5 = 4.5.
  EXPECT_NEAR(closed_form::waitingExpected(3), 4.5, 1e-12);
}

TEST(ClosedForm, GatheringMatchesFormula) {
  // Thm 9: E[X_G] = n(n-1) sum_{i=1}^{n-1} 1/(i(i+1)); the sum telescopes
  // to 1 - 1/n, so E[X_G] = (n-1)^2 * (n)/(n) ... check directly: n = 3 ->
  // 6 * (1/2 + 1/6) = 4.
  EXPECT_NEAR(closed_form::gatheringExpected(3), 4.0, 1e-12);
  // Telescoping identity: E[X_G] = n(n-1)(1 - 1/n) = (n-1)^2.
  EXPECT_NEAR(closed_form::gatheringExpected(10), 81.0, 1e-9);
}

TEST(ClosedForm, LastTransmissionIsQuadratic) {
  EXPECT_DOUBLE_EQ(closed_form::lastTransmissionExpected(10), 45.0);
}

TEST(ClosedForm, WaitingGreedyTauGrowsAsPaperSays) {
  // Cor 3: tau = n^1.5 sqrt(log n); check the scaling between two sizes.
  const double t1 = closed_form::waitingGreedyTau(100);
  const double t2 = closed_form::waitingGreedyTau(400);
  // n^1.5 alone gives factor 8; the sqrt(log) adds a bit more.
  EXPECT_GT(t2 / t1, 8.0);
  EXPECT_LT(t2 / t1, 10.0);
}

}  // namespace
}  // namespace doda::util
