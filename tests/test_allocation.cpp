// Heap-tracking test for the engine hot path: after a warm-up run over the
// same Scratch, an execution must perform zero steady-state allocations
// (small systems) or at most the constant result-copy allocations (spilled
// source sets). A replaced global operator new/delete counts allocations on
// the test thread while armed; everything forwards to malloc/free, so the
// counter is sanitizer-compatible.

#include <gtest/gtest.h>

#include <cstdlib>
#include <new>

#include "adversary/sequence_adversary.hpp"
#include "algorithms/gathering.hpp"
#include "core/engine.hpp"
#include "dynagraph/traces.hpp"
#include "test_helpers.hpp"
#include "util/rng.hpp"

namespace {
thread_local bool t_counting = false;
thread_local std::size_t t_allocations = 0;
}  // namespace

void* operator new(std::size_t size) {
  if (t_counting) ++t_allocations;
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace doda::core {
namespace {

using dynagraph::InteractionSequence;

/// Runs `body` with allocation counting armed and returns the count.
template <typename F>
std::size_t countAllocations(F&& body) {
  t_allocations = 0;
  t_counting = true;
  body();
  t_counting = false;
  return t_allocations;
}

TEST(EngineAllocation, SteadyStateIsAllocationFreeForInlineSets) {
  // n = 8 keeps every source set in the inline representation, so after
  // one warm-up trial a whole execution — including the result copy —
  // must not touch the heap.
  const std::size_t n = 8;
  util::Rng rng(42);
  const auto seq = dynagraph::traces::uniformRandom(n, 4000, rng);
  algorithms::Gathering algorithm;
  Engine engine({n, 0}, AggregationFunction::count());
  Engine::Scratch scratch;
  RunOptions options;
  options.capture_schedule = false;

  {
    adversary::SequenceViewAdversary warmup{seq};
    const auto r = engine.runInto(scratch, algorithm, warmup, options);
    ASSERT_TRUE(r.terminated);
  }
  for (int trial = 0; trial < 3; ++trial) {
    adversary::SequenceViewAdversary adversary{seq};
    ExecutionResult result;
    const std::size_t allocations = countAllocations([&] {
      result = engine.runInto(scratch, algorithm, adversary, options);
    });
    ASSERT_TRUE(result.terminated);
    EXPECT_EQ(result.sink_datum.sources.size(), n);
    EXPECT_EQ(allocations, 0u) << "trial " << trial;
  }
}

TEST(EngineAllocation, SteadyStateSpilledSetsAllocateOnlyTheResultCopy) {
  // n = 200 forces sink-side source sets into the spilled (bitset)
  // representation. The per-transfer path must stay allocation-free after
  // warm-up; only copying the spilled sink datum into the result may
  // allocate, and that is a constant independent of n and trial length.
  const std::size_t n = 200;
  util::Rng rng(7);
  InteractionSequence seq;
  while (true) {
    seq = dynagraph::traces::uniformRandom(n, 200 * n, rng);
    algorithms::Gathering probe;
    if (doda::testing::runOn(probe, seq, n, 0).terminated) break;
  }

  algorithms::Gathering algorithm;
  Engine engine({n, 0}, AggregationFunction::count());
  Engine::Scratch scratch;
  RunOptions options;
  options.capture_schedule = false;

  {
    adversary::SequenceViewAdversary warmup{seq};
    const auto r = engine.runInto(scratch, algorithm, warmup, options);
    ASSERT_TRUE(r.terminated);
  }
  for (int trial = 0; trial < 3; ++trial) {
    adversary::SequenceViewAdversary adversary{seq};
    ExecutionResult result;
    const std::size_t allocations = countAllocations([&] {
      result = engine.runInto(scratch, algorithm, adversary, options);
    });
    ASSERT_TRUE(result.terminated);
    EXPECT_EQ(result.sink_datum.sources.size(), n);
    // n-1 transfers happened; a pre-refactor merged-vector implementation
    // allocated at least once per transfer.
    EXPECT_LE(allocations, 2u) << "trial " << trial;
  }
}

TEST(EngineAllocation, ScratchReuseAcrossDifferentSequences) {
  // Different randomness each trial (the measurement-loop shape): once
  // every datum's spilled buffer has warmed up, later trials stop
  // allocating regardless of which nodes spill.
  const std::size_t n = 64;
  algorithms::Gathering algorithm;
  Engine engine({n, 0}, AggregationFunction::count());
  Engine::Scratch scratch;
  RunOptions options;
  options.capture_schedule = false;
  util::Rng rng(99);

  std::size_t last = 0;
  for (int trial = 0; trial < 6; ++trial) {
    const auto seq = dynagraph::traces::uniformRandom(n, 100 * n, rng);
    adversary::SequenceViewAdversary adversary{seq};
    last = countAllocations(
        [&] { engine.runInto(scratch, algorithm, adversary, options); });
  }
  // After several warm trials the steady state is just the result copy.
  EXPECT_LE(last, 2u);
}

}  // namespace
}  // namespace doda::core
