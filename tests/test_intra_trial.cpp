// Intra-trial block-parallel engine (core/block_engine.cpp): bit-identity
// against the serial loop across the workers x partitions x block-size
// matrix, golden-pinned folded statistics, model-violation parity, the
// endpoint-local view contract, and a randomized differential fuzz. The
// identity checks compare EVERY ExecutionResult field plus the
// transmission schedule element-wise and the sink's floating-point
// aggregate bit-for-bit (sum aggregation over random initial values, so
// any reordering of per-receiver aggregation would be caught).

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "adversary/randomized_adversary.hpp"
#include "adversary/sequence_adversary.hpp"
#include "algorithms/gathering.hpp"
#include "algorithms/waiting.hpp"
#include "algorithms/waiting_greedy.hpp"
#include "core/engine.hpp"
#include "dynagraph/lazy_sequence.hpp"
#include "dynagraph/trace_io.hpp"
#include "dynagraph/traces.hpp"
#include "sim/experiment.hpp"
#include "sim/trace_replay.hpp"
#include "util/rng.hpp"

namespace doda {
namespace {

using core::Engine;
using core::ExecutionResult;
using core::Interaction;
using core::IntraTrialOptions;
using core::NodeId;
using core::RunOptions;
using core::Time;
using dynagraph::InteractionSequence;
using dynagraph::InteractionSequenceView;

constexpr std::size_t kWorkerMatrix[] = {1, 2, 8};
constexpr std::size_t kPartitionMatrix[] = {1, 2, 8};
constexpr Time kBlockMatrix[] = {3, 64, Time{1} << 16};

void expectIdentical(const ExecutionResult& serial,
                     const ExecutionResult& blocked,
                     const std::string& label) {
  EXPECT_EQ(serial.terminated, blocked.terminated) << label;
  EXPECT_EQ(serial.last_transmission_time, blocked.last_transmission_time)
      << label;
  EXPECT_EQ(serial.interactions_to_terminate,
            blocked.interactions_to_terminate)
      << label;
  EXPECT_EQ(serial.interactions_dispatched, blocked.interactions_dispatched)
      << label;
  EXPECT_EQ(serial.sink_datum.value, blocked.sink_datum.value) << label;
  EXPECT_TRUE(serial.sink_datum.sources == blocked.sink_datum.sources)
      << label;
  ASSERT_EQ(serial.schedule.size(), blocked.schedule.size()) << label;
  for (std::size_t k = 0; k < serial.schedule.size(); ++k)
    EXPECT_EQ(serial.schedule[k], blocked.schedule[k])
        << label << " record " << k;
}

std::vector<double> randomValues(std::size_t n, util::Rng& rng) {
  std::vector<double> values(n);
  for (auto& v : values) v = 0.25 + rng.uniform() * 3.0;
  return values;
}

/// Serial reference plus the full matrix of blocked runs over one fixed
/// sequence; `make` builds a fresh algorithm per run.
template <typename MakeAlgorithm>
void checkMatrixOn(const InteractionSequence& seq, std::size_t n,
                   NodeId sink, const MakeAlgorithm& make,
                   const RunOptions& options, const std::string& label) {
  Engine engine({n, sink}, core::AggregationFunction::sum());
  Engine::Scratch scratch;
  adversary::SequenceViewAdversary serial_adversary{seq};
  auto serial_algorithm = make();
  const auto serial =
      engine.runInto(scratch, *serial_algorithm, serial_adversary, options);
  for (const std::size_t workers : kWorkerMatrix) {
    for (const std::size_t partitions : kPartitionMatrix) {
      for (const Time block : kBlockMatrix) {
        IntraTrialOptions intra;
        intra.workers = workers;
        intra.partitions = partitions;
        intra.block_size = block;
        Engine::Scratch blocked_scratch;
        auto algorithm = make();
        const auto blocked =
            engine.runBlocked(blocked_scratch, *algorithm,
                              InteractionSequenceView(seq), options, intra);
        expectIdentical(serial, blocked,
                        label + " W=" + std::to_string(workers) +
                            " P=" + std::to_string(partitions) +
                            " B=" + std::to_string(block));
      }
    }
  }
}

TEST(IntraTrialIdentity, GatheringMatrixOnRandomSequences) {
  util::Rng rng(0xb10c);
  for (const std::size_t n : {std::size_t{2}, std::size_t{5}, std::size_t{17},
                              std::size_t{64}}) {
    const NodeId sink = static_cast<NodeId>(rng.below(n));
    const auto seq = dynagraph::traces::uniformRandom(
        n, static_cast<Time>(4 * n * n + 8), rng);
    RunOptions options;
    options.initial_values = randomValues(n, rng);
    checkMatrixOn(
        seq, n, sink, [] { return std::make_unique<algorithms::Gathering>(); },
        options, "gathering n=" + std::to_string(n));
  }
}

TEST(IntraTrialIdentity, WaitingMatrixIncludingExhaustion) {
  // Waiting only transfers on sink interactions, so the short sequence
  // exercises the not-terminated path (dispatched == length, partial
  // schedule) across the whole matrix; the long one terminates.
  util::Rng rng(0x77a1);
  const std::size_t n = 24;
  const NodeId sink = 5;
  for (const Time length : {Time{40}, Time{20 * 24 * 24}}) {
    const auto seq = dynagraph::traces::uniformRandom(n, length, rng);
    RunOptions options;
    options.initial_values = randomValues(n, rng);
    checkMatrixOn(
        seq, n, sink, [] { return std::make_unique<algorithms::Waiting>(); },
        options, "waiting len=" + std::to_string(length));
  }
}

TEST(IntraTrialIdentity, MaxInteractionsCapMatchesSerial) {
  util::Rng rng(0xcafe);
  const std::size_t n = 12;
  const auto seq = dynagraph::traces::uniformRandom(n, 4000, rng);
  for (const Time cap : {Time{0}, Time{1}, Time{37}, Time{400}}) {
    RunOptions options;
    options.max_interactions = cap;
    checkMatrixOn(
        seq, n, 0, [] { return std::make_unique<algorithms::Gathering>(); },
        options, "cap=" + std::to_string(cap));
  }
}

TEST(IntraTrialIdentity, EmptySequence) {
  checkMatrixOn(
      InteractionSequence{}, 4, 0,
      [] { return std::make_unique<algorithms::Gathering>(); }, RunOptions{},
      "empty");
}

TEST(IntraTrialIdentity, LazySequenceMatchesSerialAdversary) {
  // The generation-overlapped lazy path: serial engine over a
  // RandomizedAdversary vs runBlocked over a fresh adversary's committed
  // randomness (same seed => same sequence).
  for (const std::uint64_t seed : {1u, 2u, 99u}) {
    const std::size_t n = 20;
    Engine engine({n, 3}, core::AggregationFunction::sum());
    RunOptions options;

    adversary::RandomizedAdversary serial_adversary(n, seed);
    algorithms::Gathering serial_algorithm;
    Engine::Scratch scratch;
    const auto serial =
        engine.runInto(scratch, serial_algorithm, serial_adversary, options);

    for (const std::size_t workers : kWorkerMatrix) {
      for (const std::size_t partitions : kPartitionMatrix) {
        adversary::RandomizedAdversary adversary(n, seed);
        algorithms::Gathering algorithm;
        Engine::Scratch blocked_scratch;
        IntraTrialOptions intra;
        intra.workers = workers;
        intra.partitions = partitions;
        intra.block_size = 128;
        const auto blocked =
            engine.runBlocked(blocked_scratch, algorithm,
                              adversary.lazySequence(), options, intra);
        expectIdentical(serial, blocked,
                        "lazy seed=" + std::to_string(seed) +
                            " W=" + std::to_string(workers) +
                            " P=" + std::to_string(partitions));
      }
    }
  }
}

TEST(IntraTrialIdentity, LazySequenceGuardExhaustionParity) {
  // A max_length guard below the termination point: the serial loop
  // throws std::length_error from the generator; the blocked loop must
  // reproduce it instead of returning a truncated result.
  const std::size_t n = 16;
  Engine engine({n, 0}, core::AggregationFunction::count());
  RunOptions options;

  adversary::RandomizedAdversary serial_adversary(n, 7, /*max_length=*/50);
  algorithms::Waiting serial_algorithm;
  Engine::Scratch scratch;
  EXPECT_THROW(
      engine.runInto(scratch, serial_algorithm, serial_adversary, options),
      std::length_error);

  IntraTrialOptions intra;
  intra.workers = 2;
  intra.partitions = 2;
  intra.block_size = 16;
  adversary::RandomizedAdversary adversary(n, 7, /*max_length=*/50);
  algorithms::Waiting algorithm;
  Engine::Scratch blocked_scratch;
  EXPECT_THROW(engine.runBlocked(blocked_scratch, algorithm,
                                 adversary.lazySequence(), options, intra),
               std::length_error);

  // With max_interactions at the guard, both stop cleanly instead.
  options.max_interactions = 50;
  adversary::RandomizedAdversary capped_serial(n, 7, /*max_length=*/50);
  Engine::Scratch s2;
  const auto serial =
      engine.runInto(s2, serial_algorithm, capped_serial, options);
  adversary::RandomizedAdversary capped(n, 7, /*max_length=*/50);
  Engine::Scratch s3;
  const auto blocked = engine.runBlocked(
      s3, algorithm, capped.lazySequence(), options, intra);
  expectIdentical(serial, blocked, "guard-capped");
}

// -- model-violation parity ------------------------------------------------

/// Endpoint-local policy that misbehaves at exactly one scripted time:
/// names a non-endpoint receiver or elects the sink as sender. Before the
/// scripted time it either gathers normally or refuses every transfer
/// (`active_before`); pure in (interaction, t, SystemInfo) throughout, so
/// it is a legal runBlocked subject.
class ScriptedViolation final : public core::DodaAlgorithm {
 public:
  enum class Kind { kNonEndpoint, kSinkTransmits };

  ScriptedViolation(Time at, Kind kind, bool active_before)
      : at_(at), kind_(kind), active_before_(active_before) {}
  std::string name() const override { return "ScriptedViolation"; }
  bool isEndpointLocal() const override { return true; }

  std::optional<NodeId> decide(const Interaction& i, Time t,
                               const core::ExecutionView& view) override {
    const auto sink = view.system().sink;
    if (t == at_) {
      if (kind_ == Kind::kNonEndpoint)
        return static_cast<NodeId>(i.a() + i.b() + 1);  // never an endpoint
      if (i.involves(sink)) return i.other(sink);       // sink transmits
      return i.a();
    }
    if (!active_before_ && t < at_) return std::nullopt;
    if (i.involves(sink)) return sink;
    return i.a();
  }

 private:
  Time at_;
  Kind kind_;
  bool active_before_;
};

std::string violationMessageSerial(core::DodaAlgorithm& algorithm,
                                   const InteractionSequence& seq,
                                   std::size_t n, NodeId sink) {
  Engine engine({n, sink}, core::AggregationFunction::count());
  adversary::SequenceViewAdversary adversary{seq};
  Engine::Scratch scratch;
  try {
    engine.runInto(scratch, algorithm, adversary, {});
  } catch (const core::ModelViolation& e) {
    return e.what();
  }
  return "";
}

std::string violationMessageBlocked(core::DodaAlgorithm& algorithm,
                                    const InteractionSequence& seq,
                                    std::size_t n, NodeId sink,
                                    const IntraTrialOptions& intra) {
  Engine engine({n, sink}, core::AggregationFunction::count());
  Engine::Scratch scratch;
  try {
    engine.runBlocked(scratch, algorithm, InteractionSequenceView(seq), {},
                      intra);
  } catch (const core::ModelViolation& e) {
    return e.what();
  }
  return "";
}

TEST(IntraTrialViolations, ParityAcrossMatrix) {
  util::Rng rng(0xbadb);
  const std::size_t n = 10;
  const NodeId sink = 0;
  // Crafted prefix so each scripted time hits a known interaction while
  // every node still owns data (the algorithm refuses transfers before the
  // scripted time): t=1 is a non-sink pair, t=2 involves the sink.
  InteractionSequence seq{Interaction(1, 2), Interaction(3, 4),
                          Interaction(0, 5)};
  seq.appendAll(dynagraph::traces::uniformRandom(n, 600, rng));

  struct Case {
    const char* label;
    InteractionSequence seq;
    ScriptedViolation::Kind kind;
    Time at;
  };
  std::vector<Case> cases;
  cases.push_back({"non-endpoint", seq, ScriptedViolation::Kind::kNonEndpoint,
                   1});
  cases.push_back({"sink-transmits", seq,
                   ScriptedViolation::Kind::kSinkTransmits, 2});
  {
    // Out-of-range node id injected mid-sequence (adversary misbehaviour);
    // the refuse-everything algorithm guarantees the serial loop reaches it.
    InteractionSequence bad = seq.slice(0, 40);
    bad.append(Interaction(1, static_cast<NodeId>(n + 5)));
    bad.appendAll(seq.slice(40, seq.length()));
    cases.push_back({"bad-node-id", bad,
                     ScriptedViolation::Kind::kNonEndpoint, Time{100000}});
  }

  for (const auto& test_case : cases) {
    ScriptedViolation reference(test_case.at, test_case.kind,
                                /*active_before=*/false);
    const std::string expected =
        violationMessageSerial(reference, test_case.seq, n, sink);
    ASSERT_FALSE(expected.empty()) << test_case.label;
    for (const std::size_t workers : kWorkerMatrix) {
      for (const std::size_t partitions : kPartitionMatrix) {
        for (const Time block : kBlockMatrix) {
          IntraTrialOptions intra;
          intra.workers = workers;
          intra.partitions = partitions;
          intra.block_size = block;
          ScriptedViolation algorithm(test_case.at, test_case.kind,
                                      /*active_before=*/false);
          EXPECT_EQ(violationMessageBlocked(algorithm, test_case.seq, n,
                                            sink, intra),
                    expected)
              << test_case.label << " W=" << workers << " P=" << partitions
              << " B=" << block;
        }
      }
    }
  }
}

TEST(IntraTrialViolations, TerminationBeforeViolationDoesNotThrow) {
  // The convergecast completes at t=2, strictly before the scripted
  // violation at t=3 — the serial loop never reaches it, so the blocked
  // engine must not throw either (its optimistic scan does see t=3).
  const std::size_t n = 4;
  InteractionSequence seq{Interaction(0, 1), Interaction(0, 2),
                          Interaction(0, 3), Interaction(1, 2)};
  checkMatrixOn(
      seq, n, 0,
      [] {
        return std::make_unique<ScriptedViolation>(
            3, ScriptedViolation::Kind::kNonEndpoint, /*active_before=*/true);
      },
      RunOptions{}, "termination-before-violation");
}

TEST(IntraTrialViolations, TerminationBeforeBadIdDoesNotThrow) {
  const std::size_t n = 4;
  InteractionSequence seq{Interaction(0, 1), Interaction(0, 2),
                          Interaction(0, 3), Interaction(1, 99)};
  checkMatrixOn(
      seq, n, 0, [] { return std::make_unique<algorithms::Gathering>(); },
      RunOptions{}, "termination-before-bad-id");
}

// -- option validation and the endpoint-local view contract ----------------

/// Minimal no-op injector, only used to prove runBlocked rejects faulty
/// runs up front.
class NullFaults final : public core::FaultInjector {
 public:
  void reset(const core::SystemInfo&) override {}
  Time crashTime(NodeId) const override { return dynagraph::kNever; }
  bool isByzantine(NodeId) const override { return false; }
  void beginInteraction(Time) override {}
  bool transmissionLost(Time) override { return false; }
};

TEST(IntraTrialOptionChecks, RejectsUnsupportedConfigurations) {
  const std::size_t n = 6;
  Engine engine({n, 0}, core::AggregationFunction::count());
  Engine::Scratch scratch;
  InteractionSequence seq{Interaction(0, 1)};
  algorithms::Gathering gathering;

  {
    // Not endpoint-local: the base-class default.
    class NotLocal final : public core::DodaAlgorithm {
     public:
      std::string name() const override { return "NotLocal"; }
      std::optional<NodeId> decide(const Interaction&, Time,
                                   const core::ExecutionView&) override {
        return std::nullopt;
      }
    } algorithm;
    EXPECT_THROW(engine.runBlocked(scratch, algorithm,
                                   InteractionSequenceView(seq), {}, {}),
                 std::invalid_argument);
  }
  {
    NullFaults faults;
    RunOptions options;
    options.faults = &faults;
    EXPECT_THROW(engine.runBlocked(scratch, gathering,
                                   InteractionSequenceView(seq), options, {}),
                 std::invalid_argument);
  }
  {
    IntraTrialOptions intra;
    intra.block_size = 0;
    EXPECT_THROW(engine.runBlocked(scratch, gathering,
                                   InteractionSequenceView(seq), {}, intra),
                 std::invalid_argument);
  }
  {
    RunOptions options;
    options.initial_values = {1.0, 2.0};  // wrong size
    EXPECT_THROW(engine.runBlocked(scratch, gathering,
                                   InteractionSequenceView(seq), options, {}),
                 std::invalid_argument);
  }
}

TEST(IntraTrialOptionChecks, ViewStateAccessIsAContractBreach) {
  // An algorithm that claims isEndpointLocal() but reads execution state
  // gets the throwing DecisionView, not speculative mid-block state.
  class Peeking final : public core::DodaAlgorithm {
   public:
    std::string name() const override { return "Peeking"; }
    bool isEndpointLocal() const override { return true; }  // a lie
    std::optional<NodeId> decide(const Interaction& i, Time,
                                 const core::ExecutionView& view) override {
      if (view.ownsData(i.a())) return i.a();
      return std::nullopt;
    }
  } algorithm;
  const std::size_t n = 4;
  Engine engine({n, 0}, core::AggregationFunction::count());
  Engine::Scratch scratch;
  InteractionSequence seq{Interaction(1, 2)};
  EXPECT_THROW(engine.runBlocked(scratch, algorithm,
                                 InteractionSequenceView(seq), {}, {}),
               core::ModelViolation);
}

// -- folded statistics through the sim layer -------------------------------

TEST(IntraTrialGolden, MeasureRandomizedGatheringAcrossMatrix) {
  // The MeasureRandomizedGathering golden from test_golden_stats.cpp: the
  // blocked engine must reproduce the pinned statistics bit-for-bit for
  // every workers x partitions combination, composed with trial-level
  // threads.
  for (const std::size_t workers : kWorkerMatrix) {
    for (const std::size_t partitions : kPartitionMatrix) {
      for (const std::size_t threads : {std::size_t{1}, std::size_t{2}}) {
        sim::MeasureConfig config;
        config.node_count = 12;
        config.trials = 24;
        config.seed = 2026;
        config.threads = threads;
        config.intra_trial_workers = workers;
        config.intra_trial_partitions = partitions;
        config.intra_trial_block = 64;
        const auto result = sim::measureRandomized(config, [](auto&) {
          return std::make_unique<algorithms::Gathering>();
        });
        const std::string label = "W=" + std::to_string(workers) +
                                  " P=" + std::to_string(partitions) +
                                  " threads=" + std::to_string(threads);
        EXPECT_EQ(result.interactions.count(), 24u) << label;
        EXPECT_EQ(result.interactions.mean(), 0x1.0f55555555555p+7) << label;
        EXPECT_EQ(result.interactions.variance(), 0x1.181303b5cc0edp+12)
            << label;
        EXPECT_EQ(result.interactions.min(), 0x1.18p+5) << label;
        EXPECT_EQ(result.interactions.max(), 0x1.f8p+7) << label;
        EXPECT_EQ(result.failed_trials, 0u) << label;
      }
    }
  }
}

TEST(IntraTrialGolden, ZipfAndWithCostMatchSerial) {
  // Zipf adversary through the lazy blocked path, and measureWithCost
  // through the view blocked path: both must equal their serial twins
  // exactly (mean, variance and cost are floating-point folds).
  const sim::AlgorithmFactory factory = [](sim::TrialContext&) {
    return std::make_unique<algorithms::Gathering>();
  };
  sim::MeasureConfig config;
  config.node_count = 14;
  config.trials = 10;
  config.seed = 414;
  config.threads = 1;
  config.zipf_exponent = 0.8;
  const auto serial = sim::measureRandomized(config, factory);
  config.intra_trial_workers = 2;
  config.intra_trial_partitions = 3;
  config.intra_trial_block = 32;
  const auto blocked = sim::measureRandomized(config, factory);
  EXPECT_EQ(serial.interactions.mean(), blocked.interactions.mean());
  EXPECT_EQ(serial.interactions.variance(), blocked.interactions.variance());
  EXPECT_EQ(serial.failed_trials, blocked.failed_trials);

  sim::MeasureConfig cost_config;
  cost_config.node_count = 12;
  cost_config.trials = 8;
  cost_config.seed = 99;
  cost_config.threads = 1;
  const auto cost_serial = sim::measureWithCost(cost_config, 600, factory);
  cost_config.intra_trial_workers = 4;
  cost_config.intra_trial_block = 48;
  const auto cost_blocked = sim::measureWithCost(cost_config, 600, factory);
  EXPECT_EQ(cost_serial.interactions.mean(),
            cost_blocked.interactions.mean());
  EXPECT_EQ(cost_serial.cost.mean(), cost_blocked.cost.mean());
  EXPECT_EQ(cost_serial.cost.variance(), cost_blocked.cost.variance());
}

TEST(IntraTrialGolden, NonEndpointLocalAlgorithmsKeepTheSerialPath) {
  // WaitingGreedy consults a stateful meetTime oracle, so the intra-trial
  // request must silently fall back to the serial loop and reproduce the
  // serial statistics (rather than throwing or diverging).
  const sim::AlgorithmFactory factory = [](sim::TrialContext& context) {
    return std::make_unique<algorithms::WaitingGreedy>(context.meet_time,
                                                       180);
  };
  sim::MeasureConfig config;
  config.node_count = 16;
  config.trials = 8;
  config.seed = 7;
  config.threads = 1;
  const auto serial = sim::measureRandomized(config, factory);
  config.intra_trial_workers = 8;
  const auto routed = sim::measureRandomized(config, factory);
  EXPECT_EQ(serial.interactions.mean(), routed.interactions.mean());
  EXPECT_EQ(serial.interactions.variance(), routed.interactions.variance());
}

TEST(IntraTrialGolden, ReplayTraceIntraMatchesSerial) {
  const auto dir = std::filesystem::path(testing::TempDir()) /
                   ("doda_intra_replay_" + std::to_string(::getpid()));
  std::filesystem::remove_all(dir);
  sim::MeasureConfig record;
  record.node_count = 12;
  record.trials = 6;
  record.seed = 2101;
  sim::recordSynthetic(dir.string(), record, 800, 2);
  const auto store = dynagraph::TraceStore::open(dir.string());

  const sim::AlgorithmFactory factory = [](sim::TrialContext&) {
    return std::make_unique<algorithms::Gathering>();
  };
  sim::ReplayConfig serial_config;
  serial_config.threads = 1;
  serial_config.compute_cost = true;
  const auto serial = sim::replayTrace(store, serial_config, factory);

  sim::ReplayConfig intra_config = serial_config;
  intra_config.intra_trial_workers = 2;
  intra_config.intra_trial_partitions = 4;
  intra_config.intra_trial_block = 96;
  const auto blocked = sim::replayTrace(store, intra_config, factory);

  EXPECT_EQ(serial.interactions.count(), blocked.interactions.count());
  EXPECT_EQ(serial.interactions.mean(), blocked.interactions.mean());
  EXPECT_EQ(serial.cost.mean(), blocked.cost.mean());
  EXPECT_EQ(serial.failed_trials, blocked.failed_trials);
  std::filesystem::remove_all(dir);
}

// -- randomized differential fuzz ------------------------------------------

TEST(IntraTrialFuzz, RandomConfigurationsMatchSerial) {
  int iters = 40;
  if (const char* env = std::getenv("DODA_FUZZ_ITERS"))
    iters = std::max(iters, std::atoi(env) / 10);
  util::Rng rng(0xf02d);
  for (int iter = 0; iter < iters; ++iter) {
    const std::size_t n = 3 + rng.below(30);
    const NodeId sink = static_cast<NodeId>(rng.below(n));
    const Time length =
        1 + rng.below(static_cast<std::uint64_t>(4 * n * n));
    const auto seq =
        rng.chance(0.3)
            ? dynagraph::traces::zipfRandom(n, length, 0.9, rng)
            : dynagraph::traces::uniformRandom(n, length, rng);
    RunOptions options;
    options.initial_values = randomValues(n, rng);
    if (rng.chance(0.3)) options.max_interactions = rng.below(length + 10);
    options.capture_schedule = !rng.chance(0.2);

    IntraTrialOptions intra;
    intra.workers = 1 + rng.below(4);
    intra.partitions = 1 + rng.below(6);
    intra.block_size = 1 + rng.below(80);

    const bool waiting = rng.chance(0.3);
    const auto make = [&]() -> std::unique_ptr<core::DodaAlgorithm> {
      if (waiting) return std::make_unique<algorithms::Waiting>();
      return std::make_unique<algorithms::Gathering>();
    };

    Engine engine({n, sink}, core::AggregationFunction::sum());
    Engine::Scratch serial_scratch;
    adversary::SequenceViewAdversary adversary{seq};
    auto serial_algorithm = make();
    const auto serial = engine.runInto(serial_scratch, *serial_algorithm,
                                       adversary, options);
    Engine::Scratch blocked_scratch;
    auto blocked_algorithm = make();
    const auto blocked =
        engine.runBlocked(blocked_scratch, *blocked_algorithm,
                          InteractionSequenceView(seq), options, intra);
    expectIdentical(serial, blocked,
                    "fuzz iter=" + std::to_string(iter) +
                        " n=" + std::to_string(n) +
                        " len=" + std::to_string(length) +
                        " W=" + std::to_string(intra.workers) +
                        " P=" + std::to_string(intra.partitions) +
                        " B=" + std::to_string(intra.block_size));
  }
}

}  // namespace
}  // namespace doda
