// dodad server tests: the headline acceptance gate of the aggregation
// server — every served measurement is bit-identical (hexfloat-compared)
// to the offline sim entry points for the same seed, at any thread count
// and any concurrent-client count — plus the job lifecycle (admission
// control, trial budget, cancel, subscribe streaming, drain) and the
// transport's failure modes (malformed frames, oversized frames,
// mid-stream disconnects) over real sockets.

#include <gtest/gtest.h>

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "algorithms/gathering.hpp"
#include "algorithms/waiting.hpp"
#include "server/job_queue.hpp"
#include "server/protocol.hpp"
#include "server/server.hpp"
#include "server/service.hpp"
#include "sim/experiment.hpp"
#include "sim/fault_experiment.hpp"
#include "sim/trace_replay.hpp"
#include "util/rng.hpp"

namespace doda::server {
namespace {

using namespace std::chrono_literals;

// ------------------------------------------------------ in-process harness

/// Drives Service exactly like the transport: handle, "write" the
/// response, then run the after-reply hook (job activation / subscriber
/// attach).
Json rpc(Service& service, const std::string& line,
         const StreamSink& sink = nullptr) {
  Handled handled = service.handle(line, sink);
  if (handled.after_reply) handled.after_reply();
  return std::move(handled.response);
}

int errorCode(const Json& response) {
  const Json* error = response.find("error");
  if (error == nullptr) return 0;
  return static_cast<int>(error->find("code")->asInt());
}

const Json& resultOf(const Json& response) {
  const Json* result = response.find("result");
  EXPECT_NE(result, nullptr) << "error response: " << response.dump();
  static const Json empty;
  return result != nullptr ? *result : empty;
}

/// Polls job.status until the job reaches a terminal state.
std::string awaitTerminal(Service& service, std::uint64_t job,
                          std::chrono::seconds timeout = 30s) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (std::chrono::steady_clock::now() < deadline) {
    const Json response =
        rpc(service, "{\"id\":0,\"method\":\"job.status\",\"params\":{\"job\":" +
                         std::to_string(job) + "}}");
    const std::string state = resultOf(response).find("state")->asString();
    if (state == "done" || state == "failed" || state == "cancelled")
      return state;
    std::this_thread::sleep_for(2ms);
  }
  return "timeout";
}

/// Submits a job, waits for it, and returns the result payload's stats.
Json runJob(Service& service, const std::string& params) {
  const Json submitted = rpc(
      service, "{\"id\":1,\"method\":\"job.submit\",\"params\":" + params + "}");
  const std::uint64_t job =
      static_cast<std::uint64_t>(resultOf(submitted).find("job")->asInt());
  EXPECT_EQ(awaitTerminal(service, job), "done");
  const Json response =
      rpc(service, "{\"id\":2,\"method\":\"job.result\",\"params\":{\"job\":" +
                       std::to_string(job) + "}}");
  return *resultOf(response).find("stats");
}

std::string hexMean(const Json& stats) {
  return stats.find("interactions")->find("mean_hex")->asString();
}
std::string hexStddev(const Json& stats) {
  return stats.find("interactions")->find("stddev_hex")->asString();
}

sim::AlgorithmFactory gatheringFactory() {
  return [](sim::TrialContext&) -> std::unique_ptr<core::DodaAlgorithm> {
    return std::make_unique<algorithms::Gathering>();
  };
}

// --------------------------------------------------------- served goldens

TEST(ServedGolden, RandomizedMatchesOfflineAtEveryThreadCount) {
  sim::MeasureConfig config;
  config.node_count = 16;
  config.trials = 24;
  config.seed = 20160627;  // ICDCS'16
  config.threads = 1;
  const auto offline = sim::measureRandomized(config, gatheringFactory());
  const Json offline_stats = statsJson(offline);

  Service service;
  for (const int threads : {1, 2, 8}) {
    const Json stats = runJob(
        service,
        "{\"kind\":\"randomized\",\"algorithm\":\"gathering\",\"n\":16,"
        "\"trials\":24,\"seed\":20160627,\"threads\":" +
            std::to_string(threads) + "}");
    EXPECT_EQ(hexMean(stats), hexMean(offline_stats)) << threads << " threads";
    EXPECT_EQ(hexStddev(stats), hexStddev(offline_stats));
  }
}

TEST(ServedGolden, CostMatchesMeasureWithCost) {
  sim::MeasureConfig config;
  config.node_count = 12;
  config.trials = 16;
  config.seed = 99;
  config.threads = 1;
  const auto offline =
      sim::measureWithCost(config, 2048, gatheringFactory(), 8);
  Service service;
  const Json stats = runJob(
      service,
      "{\"kind\":\"cost\",\"algorithm\":\"gathering\",\"n\":12,\"trials\":16,"
      "\"seed\":99,\"threads\":2,\"length_hint\":2048}");
  EXPECT_EQ(hexMean(stats), hexMean(statsJson(offline)));
  ASSERT_NE(stats.find("cost"), nullptr);
  EXPECT_EQ(stats.find("cost")->find("mean_hex")->asString(),
            statsJson(offline).find("cost")->find("mean_hex")->asString());
}

TEST(ServedGolden, OfflineOptMatchesMeasureOfflineOptimal) {
  sim::MeasureConfig config;
  config.node_count = 10;
  config.trials = 16;
  config.seed = 7;
  config.threads = 1;
  const auto offline = sim::measureOfflineOptimal(config);
  Service service;
  const Json stats = runJob(
      service,
      "{\"kind\":\"offline-opt\",\"n\":10,\"trials\":16,\"seed\":7,"
      "\"threads\":4}");
  EXPECT_EQ(hexMean(stats), hexMean(statsJson(offline)));
}

TEST(ServedGolden, FaultsMatchesMeasureWithFaults) {
  sim::MeasureConfig config;
  config.node_count = 10;
  config.trials = 16;
  config.seed = 5;
  config.threads = 1;
  config.faults.loss_p = 0.2;
  config.max_interactions = core::Time{1} << 14;
  const auto offline =
      sim::measureWithFaults(config, 1024, gatheringFactory(), 8);
  Service service;
  const Json stats = runJob(
      service,
      "{\"kind\":\"faults\",\"algorithm\":\"gathering\",\"n\":10,"
      "\"trials\":16,\"seed\":5,\"threads\":2,\"length_hint\":1024,"
      "\"max_interactions\":16384,\"faults\":{\"loss\":0.2}}");
  EXPECT_EQ(hexMean(stats), hexMean(faultResultJson(offline)));
  const Json* degradation = stats.find("degradation");
  ASSERT_NE(degradation, nullptr);
  EXPECT_EQ(degradation->find("trials")->asInt(),
            static_cast<std::int64_t>(offline.degradation.trials()));
  EXPECT_EQ(degradation->find("completed")->asInt(),
            static_cast<std::int64_t>(offline.degradation.completed()));
}

TEST(ServedGolden, ReplayMatchesReplayTrace) {
  const auto dir = std::filesystem::temp_directory_path() /
                   "doda_served_replay_store";
  std::filesystem::remove_all(dir);
  sim::MeasureConfig record;
  record.node_count = 12;
  record.trials = 10;
  record.seed = 31;
  sim::recordSynthetic(dir.string(), record, 4096, 2);

  const auto store = dynagraph::TraceStore::open(dir.string());
  sim::ReplayConfig replay;
  replay.threads = 1;
  replay.compute_cost = true;
  const auto offline = sim::replayTrace(store, replay, gatheringFactory());

  Service service;
  const Json stats = runJob(
      service, "{\"kind\":\"replay\",\"store\":\"" + dir.string() +
                   "\",\"algorithm\":\"gathering\",\"threads\":2,"
                   "\"compute_cost\":true}");
  EXPECT_EQ(hexMean(stats), hexMean(statsJson(offline)));
  EXPECT_EQ(stats.find("cost")->find("mean_hex")->asString(),
            statsJson(offline).find("cost")->find("mean_hex")->asString());

  // A ranged replay folds exactly the window's trials.
  sim::ReplayConfig window = replay;
  window.trial_range = {2, 7};
  const auto offline_window =
      sim::replayTrace(store, window, gatheringFactory());
  const Json windowed = runJob(
      service, "{\"kind\":\"replay\",\"store\":\"" + dir.string() +
                   "\",\"algorithm\":\"gathering\",\"compute_cost\":true,"
                   "\"first\":2,\"last\":7}");
  EXPECT_EQ(hexMean(windowed), hexMean(statsJson(offline_window)));
  std::filesystem::remove_all(dir);
}

TEST(ServedGolden, StoreJailRejectsEscapes) {
  ServiceOptions options;
  options.stores.root = std::filesystem::temp_directory_path().string();
  Service service(options);
  for (const std::string path : {"/etc", "../escape", "a/../../b"}) {
    const Json response = rpc(
        service, "{\"id\":1,\"method\":\"job.submit\",\"params\":{\"kind\":"
                 "\"replay\",\"store\":\"" + path + "\"}}");
    EXPECT_EQ(errorCode(response), -32004) << path;
  }
}

// ----------------------------------------------------------- job lifecycle

TEST(JobLifecycle, BusyWhenQueueFull) {
  ServiceOptions options;
  options.queue.max_open = 1;
  Service service(options);
  // The first job holds the single open slot (kept dormant — its
  // after_reply is deferred — so this is race-free); the second submit
  // must be refused with kBusy, not queued or hung.
  Handled first = service.handle(
      "{\"id\":1,\"method\":\"job.submit\",\"params\":{\"kind\":"
      "\"randomized\",\"n\":8,\"trials\":4}}",
      nullptr);
  EXPECT_EQ(errorCode(first.response), 0);
  const Json second = rpc(
      service, "{\"id\":2,\"method\":\"job.submit\",\"params\":{\"kind\":"
               "\"randomized\",\"n\":8,\"trials\":4}}");
  EXPECT_EQ(errorCode(second), -32000);
  // Releasing the slot restores admission.
  first.after_reply();
  const std::uint64_t job = static_cast<std::uint64_t>(
      resultOf(first.response).find("job")->asInt());
  EXPECT_EQ(awaitTerminal(service, job), "done");
  EXPECT_EQ(errorCode(rpc(service,
                          "{\"id\":3,\"method\":\"job.submit\",\"params\":"
                          "{\"kind\":\"randomized\",\"n\":8,\"trials\":4}}")),
            0);
}

TEST(JobLifecycle, TrialBudgetEnforcedAtSubmit) {
  ServiceOptions options;
  options.max_trials_per_job = 10;
  Service service(options);
  const Json over = rpc(
      service, "{\"id\":1,\"method\":\"job.submit\",\"params\":{\"kind\":"
               "\"randomized\",\"n\":8,\"trials\":11}}");
  EXPECT_EQ(errorCode(over), -32003);
  const Json at = rpc(
      service, "{\"id\":2,\"method\":\"job.submit\",\"params\":{\"kind\":"
               "\"randomized\",\"n\":8,\"trials\":10}}");
  EXPECT_EQ(errorCode(at), 0);
}

TEST(JobLifecycle, UnknownJobAndNotFinished) {
  Service service;
  EXPECT_EQ(errorCode(rpc(service,
                          "{\"id\":1,\"method\":\"job.status\","
                          "\"params\":{\"job\":42}}")),
            -32001);
  EXPECT_EQ(errorCode(rpc(service,
                          "{\"id\":2,\"method\":\"job.subscribe\","
                          "\"params\":{\"job\":42}}")),
            -32001);
  // A queued (never activated) job is open but not finished.
  Handled submit = service.handle(
      "{\"id\":3,\"method\":\"job.submit\",\"params\":{\"kind\":"
      "\"randomized\",\"n\":8,\"trials\":4}}",
      nullptr);
  const std::uint64_t job = static_cast<std::uint64_t>(
      resultOf(submit.response).find("job")->asInt());
  EXPECT_EQ(errorCode(rpc(service,
                          "{\"id\":4,\"method\":\"job.result\","
                          "\"params\":{\"job\":" +
                              std::to_string(job) + "}}")),
            -32002);
  submit.after_reply();  // let the queue finish it before teardown
  awaitTerminal(service, job);
}

TEST(JobLifecycle, CancelRunningJobCooperatively) {
  // A deterministic cancel: the job body blocks on its cancel flag, so the
  // test never races the measurement finishing first.
  JobQueue queue;
  const std::uint64_t id =
      queue.submit("job.submit:test", 1, [](JobContext& context) -> Json {
        while (!context.cancel->load()) std::this_thread::sleep_for(1ms);
        throw sim::RunCancelled();
      });
  queue.activate(id);
  const auto deadline = std::chrono::steady_clock::now() + 10s;
  while (queue.status(id).find("state")->asString() != "running" &&
         std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(1ms);
  EXPECT_TRUE(queue.cancel(id));
  while (queue.status(id).find("state")->asString() == "running" &&
         std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(1ms);
  EXPECT_EQ(queue.status(id).find("state")->asString(), "cancelled");
  EXPECT_THROW(queue.result(id), ProtocolError);
  EXPECT_FALSE(queue.cancel(id));  // already terminal
}

TEST(JobLifecycle, CancelQueuedJobImmediately) {
  JobQueue queue;
  // Never activated: stays queued until cancelled.
  const std::uint64_t id = queue.submit(
      "job.submit:test", 1, [](JobContext&) -> Json { return Json(); });
  EXPECT_TRUE(queue.cancel(id));
  EXPECT_EQ(queue.status(id).find("state")->asString(), "cancelled");
  EXPECT_EQ(queue.openJobs(), 0u);
}

TEST(JobLifecycle, SubscribeStreamsEveryTrialThenCompletes) {
  Service service;
  std::mutex mutex;
  std::condition_variable cv;
  std::vector<Json> frames;
  bool complete = false;
  StreamSink sink = [&](const Json& frame) {
    std::lock_guard<std::mutex> lock(mutex);
    frames.push_back(frame);
    if (frame.find("method")->asString() == "job.complete") {
      complete = true;
      cv.notify_all();
    }
    return true;
  };

  // Submit (job stays dormant), subscribe, THEN activate: the subscriber
  // observes the full stream deterministically.
  Handled submit = service.handle(
      "{\"id\":1,\"method\":\"job.submit\",\"params\":{\"kind\":"
      "\"randomized\",\"n\":8,\"trials\":6,\"seed\":3,\"threads\":1}}",
      nullptr);
  const std::uint64_t job = static_cast<std::uint64_t>(
      resultOf(submit.response).find("job")->asInt());
  rpc(service,
      "{\"id\":2,\"method\":\"job.subscribe\",\"params\":{\"job\":" +
          std::to_string(job) + "}}",
      sink);
  submit.after_reply();

  {
    std::unique_lock<std::mutex> lock(mutex);
    ASSERT_TRUE(cv.wait_for(lock, 30s, [&] { return complete; }));
  }
  ASSERT_EQ(frames.size(), 7u);  // 6 progress + 1 complete
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_EQ(frames[i].find("method")->asString(), "job.progress");
    const Json* params = frames[i].find("params");
    EXPECT_EQ(params->find("folded")->asInt(),
              static_cast<std::int64_t>(i + 1));
    EXPECT_EQ(params->find("stats")->find("interactions")->find("count")
                  ->asInt(),
              static_cast<std::int64_t>(i + 1));
  }
  const Json& last = frames.back();
  EXPECT_EQ(last.find("params")->find("state")->asString(), "done");
  // The final streamed stats equal the fetched result.
  const Json result = rpc(
      service, "{\"id\":3,\"method\":\"job.result\",\"params\":{\"job\":" +
                   std::to_string(job) + "}}");
  EXPECT_TRUE(*last.find("params")->find("stats") ==
              *resultOf(result).find("stats"));
}

TEST(JobLifecycle, SubscribeToFinishedJobGetsImmediateComplete) {
  Service service;
  const Json stats = runJob(
      service, "{\"kind\":\"randomized\",\"n\":8,\"trials\":4,\"seed\":1}");
  std::vector<Json> frames;
  StreamSink sink = [&](const Json& frame) {
    frames.push_back(frame);
    return true;
  };
  rpc(service, "{\"id\":9,\"method\":\"job.subscribe\",\"params\":{\"job\":1}}",
      sink);
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].find("method")->asString(), "job.complete");
  EXPECT_TRUE(*frames[0].find("params")->find("stats") == stats);
}

TEST(JobLifecycle, DrainFinishesOpenJobsAndRefusesNew) {
  ServiceOptions options;
  options.queue.workers = 2;
  Service service(options);
  std::vector<std::uint64_t> jobs;
  for (int i = 0; i < 3; ++i) {
    const Json response = rpc(
        service, "{\"id\":1,\"method\":\"job.submit\",\"params\":{\"kind\":"
                 "\"randomized\",\"n\":8,\"trials\":8,\"seed\":" +
                     std::to_string(i) + "}}");
    jobs.push_back(
        static_cast<std::uint64_t>(resultOf(response).find("job")->asInt()));
  }
  service.drain();
  for (const std::uint64_t job : jobs)
    EXPECT_EQ(rpc(service, "{\"id\":2,\"method\":\"job.status\",\"params\":"
                           "{\"job\":" +
                               std::to_string(job) + "}}")
                  .find("result")
                  ->find("state")
                  ->asString(),
              "done");
  EXPECT_EQ(errorCode(rpc(service,
                          "{\"id\":3,\"method\":\"job.submit\",\"params\":"
                          "{\"kind\":\"randomized\",\"n\":8,\"trials\":4}}")),
            -32000);
  EXPECT_EQ(errorCode(rpc(service, "{\"id\":4,\"method\":\"ping\"}")), 0);
}

// ------------------------------------------------------------- TCP client

/// A minimal line-delimited JSON-RPC client over a blocking socket, with a
/// receive timeout so a server bug fails the test instead of hanging ctest.
class Client {
 public:
  explicit Client(std::uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd_, 0);
    const int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    timeval tv{30, 0};
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    EXPECT_EQ(::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                        sizeof(addr)),
              0);
  }
  ~Client() { close(); }
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  void close() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
  }

  void sendRaw(const std::string& bytes) {
    ASSERT_EQ(::send(fd_, bytes.data(), bytes.size(), MSG_NOSIGNAL),
              static_cast<ssize_t>(bytes.size()));
  }
  void sendLine(const std::string& line) { sendRaw(line + "\n"); }

  /// Next frame, or empty string on timeout / connection close.
  std::string recvLine() {
    for (;;) {
      const auto newline = buffer_.find('\n');
      if (newline != std::string::npos) {
        std::string line = buffer_.substr(0, newline);
        buffer_.erase(0, newline + 1);
        return line;
      }
      char chunk[4096];
      const ssize_t got = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (got <= 0) return "";
      buffer_.append(chunk, static_cast<std::size_t>(got));
    }
  }

  Json call(const std::string& line) {
    sendLine(line);
    const std::string reply = recvLine();
    EXPECT_FALSE(reply.empty()) << "no reply to: " << line;
    return reply.empty() ? Json() : Json::parse(reply);
  }

 private:
  int fd_ = -1;
  std::string buffer_;
};

/// A Service+Server pair on an ephemeral port.
struct LiveServer {
  explicit LiveServer(ServiceOptions options = {})
      : service(std::move(options)), server(service) {
    server.start();
  }
  ~LiveServer() { server.stop(); }
  Service service;
  Server server;
};

TEST(Transport, PingAndServerInfo) {
  LiveServer live;
  Client client(live.server.port());
  const Json pong = client.call("{\"id\":1,\"method\":\"ping\"}");
  EXPECT_TRUE(resultOf(pong).find("ok")->asBool());
  const Json info = client.call("{\"id\":2,\"method\":\"server.info\"}");
  EXPECT_EQ(resultOf(info).find("name")->asString(), "dodad");
  EXPECT_EQ(resultOf(info).find("protocol")->asInt(), 1);
}

TEST(Transport, ErrorFramesForBadInput) {
  LiveServer live;
  Client client(live.server.port());
  const Json parse_error = client.call("this is not json");
  EXPECT_EQ(errorCode(parse_error), -32700);
  EXPECT_TRUE(parse_error.find("id")->isNull());
  EXPECT_EQ(errorCode(client.call("{\"id\":1,\"method\":\"no.such\"}")),
            -32601);
  EXPECT_EQ(errorCode(client.call("{\"id\":2,\"method\":\"job.submit\","
                                  "\"params\":{\"kind\":\"randomized\","
                                  "\"n\":1}}")),
            -32602);
  EXPECT_EQ(errorCode(client.call("{\"method\":\"ping\",\"id\":null}")),
            -32600);
  // The connection survives every one of those.
  EXPECT_EQ(errorCode(client.call("{\"id\":3,\"method\":\"ping\"}")), 0);
}

TEST(Transport, OversizedFrameIsRejectedAndConnectionSurvives) {
  ServiceOptions options;
  options.max_frame_bytes = 1024;
  LiveServer live(options);
  Client client(live.server.port());
  const std::string big =
      "{\"id\":1,\"method\":\"ping\",\"pad\":\"" + std::string(4096, 'x') +
      "\"}";
  const Json rejected = client.call(big);
  EXPECT_EQ(errorCode(rejected), -32005);
  EXPECT_TRUE(rejected.find("id")->isNull());
  EXPECT_EQ(errorCode(client.call("{\"id\":2,\"method\":\"ping\"}")), 0);
}

TEST(Transport, MidStreamDisconnectLeavesServerServing) {
  LiveServer live;
  {
    Client half(live.server.port());
    half.sendRaw("{\"id\":1,\"meth");  // no newline, then vanish
  }
  {
    Client subscriber(live.server.port());
    const Json response = subscriber.call(
        "{\"id\":1,\"method\":\"job.submit\",\"params\":{\"kind\":"
        "\"randomized\",\"n\":12,\"trials\":32,\"seed\":4}}");
    ASSERT_EQ(errorCode(response), 0);
    const std::uint64_t job = static_cast<std::uint64_t>(
        resultOf(response).find("job")->asInt());
    subscriber.sendLine(
        "{\"id\":2,\"method\":\"job.subscribe\",\"params\":{\"job\":" +
        std::to_string(job) + "}}");
    // Vanish mid-stream: the queue must drop the dead sink harmlessly.
  }
  Client client(live.server.port());
  EXPECT_EQ(errorCode(client.call("{\"id\":3,\"method\":\"ping\"}")), 0);
}

TEST(Transport, ServedResultIsBitIdenticalAcrossConcurrentClients) {
  sim::MeasureConfig config;
  config.node_count = 16;
  config.trials = 16;
  config.seed = 1234;
  config.threads = 1;
  const std::string golden =
      hexMean(statsJson(sim::measureRandomized(config, gatheringFactory())));

  ServiceOptions options;
  options.queue.workers = 4;
  LiveServer live(options);
  constexpr int kClients = 6;
  std::vector<std::string> served(kClients);
  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      Client client(live.server.port());
      const Json submitted = client.call(
          "{\"id\":1,\"method\":\"job.submit\",\"params\":{\"kind\":"
          "\"randomized\",\"n\":16,\"trials\":16,\"seed\":1234,"
          "\"threads\":" +
          std::to_string(1 + c % 3) + "}}");
      if (errorCode(submitted) != 0) return;
      const std::string job =
          std::to_string(resultOf(submitted).find("job")->asInt());
      for (;;) {
        const Json status = client.call(
            "{\"id\":2,\"method\":\"job.status\",\"params\":{\"job\":" + job +
            "}}");
        const std::string state =
            resultOf(status).find("state")->asString();
        if (state == "done") break;
        if (state == "failed" || state == "cancelled") return;
        std::this_thread::sleep_for(2ms);
      }
      const Json result = client.call(
          "{\"id\":3,\"method\":\"job.result\",\"params\":{\"job\":" + job +
          "}}");
      served[c] = hexMean(*resultOf(result).find("stats"));
    });
  }
  for (auto& thread : threads) thread.join();
  for (int c = 0; c < kClients; ++c)
    EXPECT_EQ(served[c], golden) << "client " << c;
}

/// The TSan smoke of the CI sanitizer leg: 8 clients hammer one server
/// with a mixed submit / subscribe / status / cancel workload while the
/// queue's runners stream progress frames back concurrently.
TEST(Transport, ConcurrentMixedWorkloadSmoke) {
  ServiceOptions options;
  options.queue.workers = 4;
  options.queue.max_open = 16;
  LiveServer live(options);
  constexpr int kClients = 8;
  std::atomic<int> replies{0};
  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      Client client(live.server.port());
      util::Rng rng(static_cast<std::uint64_t>(c) + 1);
      for (int round = 0; round < 4; ++round) {
        const Json submitted = client.call(
            "{\"id\":1,\"method\":\"job.submit\",\"params\":{\"kind\":"
            "\"randomized\",\"n\":12,\"trials\":8,\"seed\":" +
            std::to_string(rng.below(1000)) + "}}");
        if (submitted.find("id") != nullptr) ++replies;
        if (errorCode(submitted) != 0) continue;  // busy is a valid outcome
        const std::string job =
            std::to_string(resultOf(submitted).find("job")->asInt());
        switch (rng.below(3)) {
          case 0: {  // subscribe and read until job.complete
            client.sendLine(
                "{\"id\":2,\"method\":\"job.subscribe\",\"params\":{"
                "\"job\":" + job + "}}");
            for (;;) {
              const std::string line = client.recvLine();
              if (line.empty()) return;
              const Json frame = Json::parse(line);
              const Json* method = frame.find("method");
              if (method != nullptr &&
                  method->asString() == "job.complete")
                break;
            }
            break;
          }
          case 1:  // fire-and-cancel
            client.call(
                "{\"id\":3,\"method\":\"job.cancel\",\"params\":{\"job\":" +
                job + "}}");
            break;
          default:  // poll to terminal
            for (;;) {
              const Json status = client.call(
                  "{\"id\":4,\"method\":\"job.status\",\"params\":{"
                  "\"job\":" + job + "}}");
              const std::string state =
                  resultOf(status).find("state")->asString();
              if (state != "queued" && state != "running") break;
              std::this_thread::sleep_for(1ms);
            }
            break;
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_GT(replies.load(), 0);
  live.service.drain();  // every job reaches a terminal state before stop
}

TEST(Transport, SubscribeStreamsOverTheWire) {
  LiveServer live;
  Client client(live.server.port());
  const Json submitted = client.call(
      "{\"id\":1,\"method\":\"job.submit\",\"params\":{\"kind\":"
      "\"randomized\",\"n\":8,\"trials\":5,\"seed\":6,\"threads\":1}}");
  ASSERT_EQ(errorCode(submitted), 0);
  const std::string job =
      std::to_string(resultOf(submitted).find("job")->asInt());
  const Json subscribed = client.call(
      "{\"id\":2,\"method\":\"job.subscribe\",\"params\":{\"job\":" + job +
      "}}");
  ASSERT_EQ(errorCode(subscribed), 0);
  // The subscribe response precedes every frame (response-before-frames
  // ordering); afterwards frames arrive folded-monotonic and end with
  // job.complete.
  std::int64_t last_folded = 0;
  for (;;) {
    const std::string line = client.recvLine();
    ASSERT_FALSE(line.empty());
    const Json frame = Json::parse(line);
    const std::string method = frame.find("method")->asString();
    if (method == "job.complete") {
      EXPECT_EQ(frame.find("params")->find("state")->asString(), "done");
      break;
    }
    ASSERT_EQ(method, "job.progress");
    const std::int64_t folded =
        frame.find("params")->find("folded")->asInt();
    EXPECT_GT(folded, last_folded);
    last_folded = folded;
  }
}

// ----------------------------------------------------------- socket fuzz

std::size_t fuzzIters(std::size_t fallback) {
  const char* env = std::getenv("DODA_FUZZ_ITERS");
  if (env == nullptr) return fallback;
  const unsigned long long parsed = std::strtoull(env, nullptr, 10);
  return parsed > 0 ? static_cast<std::size_t>(parsed) : fallback;
}

/// Throws deterministic garbage lines at a live server: every line must
/// produce exactly one error/response frame (no hangs, no crashes), and
/// the connection must stay usable.
TEST(Transport, GarbageLinesNeverWedgeTheServer) {
  LiveServer live;
  Client client(live.server.port());
  util::Rng rng(0xBADF00DU);
  const std::size_t iterations = fuzzIters(64);
  for (std::size_t i = 0; i < iterations; ++i) {
    std::string line;
    const std::size_t length = 1 + rng.below(200);
    for (std::size_t b = 0; b < length; ++b) {
      char byte = static_cast<char>(rng.below(256));
      if (byte == '\n' || byte == '\r') byte = ' ';
      line.push_back(byte);
    }
    client.sendLine(line);
    const std::string reply = client.recvLine();
    ASSERT_FALSE(reply.empty()) << "no reply at iteration " << i;
    const Json frame = Json::parse(reply);
    EXPECT_NE(frame.find("error"), nullptr) << reply;
  }
  EXPECT_EQ(errorCode(client.call("{\"id\":1,\"method\":\"ping\"}")), 0);
}

}  // namespace
}  // namespace doda::server
