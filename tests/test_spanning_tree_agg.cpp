#include "algorithms/spanning_tree_aggregation.hpp"

#include <gtest/gtest.h>

#include "analysis/convergecast.hpp"
#include "dynagraph/traces.hpp"
#include "test_helpers.hpp"
#include "util/rng.hpp"

namespace doda::algorithms {
namespace {

namespace traces = dynagraph::traces;
using core::NodeId;
using dynagraph::InteractionSequence;
using testing::ix;
using testing::runOn;

TEST(SpanningTreeAgg, WaitsForChildrenBeforeSending) {
  // Path 0-1-2 (sink 0): node 1 must not send before hearing from 2.
  const auto g = traces::pathGraph(3);
  SpanningTreeAggregation alg(g);
  const InteractionSequence seq{ix(0, 1), ix(1, 2), ix(0, 1)};
  const auto r = runOn(alg, seq, 3, 0);
  ASSERT_TRUE(r.terminated);
  ASSERT_EQ(r.schedule.size(), 2u);
  EXPECT_EQ(r.schedule[0], (core::TransmissionRecord{1, 2, 1}));
  EXPECT_EQ(r.schedule[1], (core::TransmissionRecord{2, 1, 0}));
}

TEST(SpanningTreeAgg, IgnoresNonTreeInteractions) {
  // Ring 0-1-2-3-0; BFS tree from 0: children(0) = {1,3}, parent(2) = 1.
  const auto g = traces::ringGraph(4);
  SpanningTreeAggregation alg(g);
  // {2,3} is a graph edge but not a tree edge: no transfer may happen.
  const InteractionSequence seq{ix(2, 3), ix(2, 3)};
  const auto r = runOn(alg, seq, 4, 0);
  EXPECT_TRUE(r.schedule.empty());
}

class TreeOptimality : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TreeOptimality, CostIsOneOnTrees) {
  // Paper Thm 5: when the underlying graph is a tree, the algorithm is
  // optimal (cost = 1).
  util::Rng rng(GetParam());
  const std::size_t n = 4 + rng.below(12);
  const auto tree = traces::randomTree(n, rng);
  const auto seq = traces::shuffledRounds(tree, 4 * n, rng);
  SpanningTreeAggregation alg(tree);
  const auto r = runOn(alg, seq, n, 0);
  ASSERT_TRUE(r.terminated);
  EXPECT_EQ(analysis::costOf(seq, n, 0, r.last_transmission_time), 1u);
  std::string err;
  EXPECT_TRUE(
      core::validateConvergecastSchedule(r.schedule, seq, {n, 0}, &err))
      << err;
}

INSTANTIATE_TEST_SUITE_P(Seeds, TreeOptimality,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

class RecurringFiniteCost : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RecurringFiniteCost, TerminatesWhenEdgesRecurInfinitelyOften) {
  // Paper Thm 4: with every edge recurring, cost is finite (but unbounded
  // in general when G̅ is not a tree).
  util::Rng rng(GetParam() + 100);
  const std::size_t n = 5 + rng.below(8);
  const auto g = traces::randomConnected(n, n, rng);
  const auto seq = traces::roundRobin(g, 2 * n);
  SpanningTreeAggregation alg(g);
  const auto r = runOn(alg, seq, n, 0);
  ASSERT_TRUE(r.terminated);
  const auto cost =
      analysis::costOf(seq, n, 0, r.last_transmission_time);
  EXPECT_GE(cost, 1u);
  EXPECT_LT(cost, 1u << 20);  // finite
}

INSTANTIATE_TEST_SUITE_P(Seeds, RecurringFiniteCost,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

TEST(SpanningTreeAgg, CostCanExceedOneOnNonTrees) {
  // Thm 4's second half: on a non-tree underlying graph the spanning-tree
  // algorithm can be forced to miss convergecast opportunities. On the
  // ring, the tree ignores one edge; a sequence activating tree edges
  // rarely but the full ring often yields cost > 1.
  // This is exactly the Thm 4 proof construction: the other spanning tree
  // T' = 1-2-3-0 supports a full convergecast in every block, while the
  // algorithm's BFS tree needs edge {0,1}, which the adversary withholds
  // until the end.
  const auto ring = traces::ringGraph(4);
  // BFS tree of the ring from 0: parents 1->0, 3->0, 2->1.
  InteractionSequence seq;
  for (int k = 0; k < 6; ++k) {
    seq.append(ix(1, 2));
    seq.append(ix(2, 3));
    seq.append(ix(0, 3));
  }
  seq.append(ix(0, 1));  // the withheld tree edge, at last
  SpanningTreeAggregation alg(ring);
  const auto r = runOn(alg, seq, 4, 0);
  ASSERT_TRUE(r.terminated);
  EXPECT_EQ(r.last_transmission_time, seq.length() - 1);
  EXPECT_GE(analysis::costOf(seq, 4, 0, r.last_transmission_time), 6u);
}

TEST(SpanningTreeAgg, DisconnectedKnowledgeThrowsOnReset) {
  graph::StaticGraph g(4);
  g.addEdge(0, 1);
  SpanningTreeAggregation alg(g);
  const InteractionSequence seq{ix(0, 1)};
  EXPECT_THROW(runOn(alg, seq, 4, 0), std::invalid_argument);
}

TEST(SpanningTreeAgg, MetadataMatchesPaper) {
  SpanningTreeAggregation alg(traces::pathGraph(3));
  EXPECT_TRUE(alg.isOblivious());
  EXPECT_EQ(alg.knowledge(), "underlying graph");
}

}  // namespace
}  // namespace doda::algorithms
