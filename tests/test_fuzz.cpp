// Failure-injection / fuzz suite: random decision policies against random
// and crafted adversaries, checking that the engine's model invariants
// survive anything an algorithm can legally do — and that illegal behaviour
// is always rejected rather than corrupting state.

#include <gtest/gtest.h>

#include "adversary/randomized_adversary.hpp"
#include "adversary/sequence_adversary.hpp"
#include "analysis/convergecast.hpp"
#include "algorithms/gathering.hpp"
#include "analysis/schedule_metrics.hpp"
#include "core/engine.hpp"
#include "dynagraph/traces.hpp"
#include "test_helpers.hpp"
#include "util/rng.hpp"

namespace doda {
namespace {

using core::NodeId;
using core::Time;
using dynagraph::InteractionSequence;
using testing::runOn;

/// A legal but erratic algorithm: arbitrary mix of waiting and transmitting
/// in arbitrary directions (never naming the sink as sender).
class FuzzPolicy final : public core::DodaAlgorithm {
 public:
  explicit FuzzPolicy(std::uint64_t seed) : rng_(seed) {}
  std::string name() const override { return "FuzzPolicy"; }
  std::optional<NodeId> decide(const core::Interaction& i, Time,
                               const core::ExecutionView& view) override {
    switch (rng_.below(4)) {
      case 0:
        return std::nullopt;
      case 1:
        return i.involves(view.system().sink) ? view.system().sink : i.a();
      case 2:
        return i.involves(view.system().sink) ? view.system().sink : i.b();
      default:
        // Random endpoint, but never make the sink transmit.
        if (i.a() == view.system().sink) return i.a();
        if (i.b() == view.system().sink) return i.b();
        return rng_.chance(0.5) ? i.a() : i.b();
    }
  }

 private:
  util::Rng rng_;
};

class FuzzParam : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzParam, EngineInvariantsHoldUnderRandomBehaviour) {
  util::Rng rng(GetParam());
  for (int trial = 0; trial < 15; ++trial) {
    const std::size_t n = 3 + rng.below(10);
    const NodeId sink = static_cast<NodeId>(rng.below(n));
    const auto seq =
        dynagraph::traces::uniformRandom(n, 50 + rng.below(3000), rng);
    FuzzPolicy fuzz(rng());
    core::Engine engine({n, sink}, core::AggregationFunction::count());
    adversary::SequenceAdversary adv(seq);
    const auto r = engine.run(fuzz, adv);

    // Invariant: nobody transmits twice; the sink never transmits.
    std::vector<bool> sent(n, false);
    for (const auto& rec : r.schedule) {
      EXPECT_NE(rec.sender, sink);
      EXPECT_FALSE(sent[rec.sender]);
      sent[rec.sender] = true;
      // Every transfer rides the matching interaction.
      EXPECT_EQ(seq.at(rec.time),
                core::Interaction(rec.sender, rec.receiver));
    }
    // Invariant: transfers never exceed n-1; termination iff exactly n-1.
    EXPECT_LE(r.schedule.size(), n - 1);
    EXPECT_EQ(r.terminated, r.schedule.size() == n - 1);
    // Invariant: conservation — the sink's sources are exactly the origins
    // whose chain reached it; count() value equals source-set size.
    EXPECT_EQ(r.sink_datum.value,
              static_cast<double>(r.sink_datum.sources.size()));
    const auto metrics = analysis::analyzeSchedule(r.schedule, {n, sink});
    EXPECT_EQ(metrics.delivered_count + 1, r.sink_datum.sources.size());
    // Terminated runs validate as convergecast schedules.
    if (r.terminated) {
      std::string err;
      EXPECT_TRUE(core::validateConvergecastSchedule(r.schedule, seq,
                                                     {n, sink}, &err))
          << err;
    }
  }
}

TEST_P(FuzzParam, NoPolicyBeatsTheOfflineOptimum) {
  // Soundness of opt(t): no legal execution, however lucky, terminates
  // before the offline optimum on the same sequence.
  util::Rng rng(GetParam() + 99);
  for (int trial = 0; trial < 10; ++trial) {
    const std::size_t n = 3 + rng.below(6);
    const auto seq =
        dynagraph::traces::uniformRandom(n, 100 + rng.below(1000), rng);
    FuzzPolicy fuzz(rng());
    const auto r = runOn(fuzz, seq, n, 0);
    if (!r.terminated) continue;
    const auto opt = analysis::optCompletion(seq, n, 0);
    ASSERT_NE(opt, dynagraph::kNever);
    EXPECT_GE(r.last_transmission_time, opt);
    EXPECT_GE(analysis::costOf(seq, n, 0, r.last_transmission_time), 1u);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzParam,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77, 88));

/// Adversary that returns interactions referencing unknown nodes.
class RogueAdversary final : public core::Adversary {
 public:
  std::string name() const override { return "rogue"; }
  std::optional<core::Interaction> next(Time,
                                        const core::ExecutionView&) override {
    return core::Interaction(0, 100);
  }
};

TEST(FuzzEngine, RogueAdversaryIsRejected) {
  algorithms::Gathering ga;
  core::Engine engine({4, 0}, core::AggregationFunction::count());
  RogueAdversary rogue;
  EXPECT_THROW(engine.run(ga, rogue), core::ModelViolation);
}

/// Algorithm that misbehaves only deep into the run (stale receiver).
class LateViolator final : public core::DodaAlgorithm {
 public:
  std::string name() const override { return "LateViolator"; }
  std::optional<NodeId> decide(const core::Interaction& i, Time t,
                               const core::ExecutionView& view) override {
    if (t > 40 && !i.involves(view.system().sink))
      return view.system().sink;  // receiver not part of the interaction
    return std::nullopt;
  }
};

TEST(FuzzEngine, LateViolationStillCaught) {
  util::Rng rng(123);
  // Keep drawing until an eligible (non-sink, both-owners) interaction
  // occurs after t = 40 — which is essentially certain at this length.
  const auto seq = dynagraph::traces::uniformRandom(6, 500, rng);
  LateViolator evil;
  core::Engine engine({6, 0}, core::AggregationFunction::count());
  adversary::SequenceAdversary adv(seq);
  EXPECT_THROW(engine.run(evil, adv), core::ModelViolation);
}

TEST(FuzzCost, CostChainMonotonicityOnRandomSequences) {
  // T(i) is strictly increasing until it hits infinity, for any sequence.
  util::Rng rng(321);
  for (int trial = 0; trial < 10; ++trial) {
    const std::size_t n = 3 + rng.below(8);
    const auto seq =
        dynagraph::traces::uniformRandom(n, 100 + rng.below(2000), rng);
    const auto chain = analysis::convergecastChain(seq, n, 0);
    for (std::size_t i = 0; i + 1 < chain.size(); ++i) {
      if (chain[i + 1] == dynagraph::kNever) break;
      EXPECT_LT(chain[i], chain[i + 1]);
    }
  }
}

TEST(FuzzCost, CostIsMonotoneInDuration) {
  // Later termination can never have smaller cost.
  util::Rng rng(654);
  const auto seq = dynagraph::traces::uniformRandom(6, 2000, rng);
  std::size_t prev = 1;
  for (Time d = 10; d < 1500; d += 50) {
    const auto c = analysis::costOf(seq, 6, 0, d);
    EXPECT_GE(c, prev);
    prev = c;
  }
}

}  // namespace
}  // namespace doda
