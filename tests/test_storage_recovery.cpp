// Tests of the crash-safe durable trace store (storage/): FaultyEnv
// semantics (op counting, injected faults, crash data-loss outcomes),
// manifest round-trips and torn-tail fallback, durable commit / recovery /
// compaction, incremental contact-log append (only new events ingested,
// bit-identical to a from-scratch import), allow_partial x manifest
// recovery compositions, and the kill-point sweep: every scenario is
// crashed at every op of its write schedule and the recovered store must
// be the previous or the new durable generation — never anything in
// between. The fuzz leg (StorageRecoveryFuzz, DODA_FUZZ_ITERS-scalable)
// additionally mixes drawn transient faults and dropped fsyncs into the
// schedule; under dropped fsyncs a detected (thrown) corruption is also an
// acceptable outcome, silent wrong data never is.

#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <functional>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "algorithms/gathering.hpp"
#include "dynagraph/trace_import.hpp"
#include "dynagraph/trace_io.hpp"
#include "dynagraph/traces.hpp"
#include "sim/trace_replay.hpp"
#include "storage/durable_import.hpp"
#include "storage/durable_store.hpp"
#include "storage/env.hpp"
#include "storage/manifest.hpp"
#include "util/rng.hpp"

namespace doda {
namespace {

using dynagraph::ContactImportOptions;
using dynagraph::InteractionSequence;
using dynagraph::TraceStore;
using dynagraph::TraceStoreOpenOptions;
using dynagraph::TraceStoreWriter;
using dynagraph::TraceWriterOptions;
using sim::MeasureResult;
using storage::DurableTraceStore;
using storage::Env;
using storage::EnvCrash;
using storage::FaultyEnv;
using storage::FaultyEnvPlan;

std::string scratchDir(const std::string& tag) {
  static int counter = 0;
  const auto dir = std::filesystem::path(testing::TempDir()) /
                   ("doda_storage_" + tag + "_" + std::to_string(::getpid()) +
                    "_" + std::to_string(counter++));
  std::filesystem::remove_all(dir);
  return dir.string();
}

void copyTree(const std::string& from, const std::string& to) {
  std::filesystem::remove_all(to);
  if (!from.empty() && std::filesystem::exists(from))
    std::filesystem::copy(from, to,
                          std::filesystem::copy_options::recursive);
}

std::vector<InteractionSequence> sampleTrials(std::size_t n,
                                              std::size_t count,
                                              core::Time length,
                                              std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<InteractionSequence> trials;
  trials.reserve(count);
  for (std::size_t i = 0; i < count; ++i)
    trials.push_back(dynagraph::traces::uniformRandom(n, length, rng));
  return trials;
}

std::vector<InteractionSequence> decodeAll(const TraceStore& store) {
  std::vector<InteractionSequence> trials;
  for (std::size_t s = 0; s < store.shardCount(); ++s) {
    auto reader = store.openShard(s);
    while (reader.beginTrial()) trials.push_back(reader.readRest());
  }
  return trials;
}

void expectTrialsEqual(const std::vector<InteractionSequence>& a,
                       const std::vector<InteractionSequence>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].length(), b[i].length()) << "trial " << i;
    for (core::Time t = 0; t < a[i].length(); ++t)
      ASSERT_EQ(a[i].at(t), b[i].at(t)) << "trial " << i << " t=" << t;
  }
}

MeasureResult replayStats(const TraceStore& store) {
  const sim::AlgorithmFactory factory = [](sim::TrialContext&) {
    return std::make_unique<algorithms::Gathering>();
  };
  sim::ReplayConfig serial;
  serial.threads = 1;
  return sim::replayTrace(store, serial, factory);
}

void expectIdentical(const MeasureResult& a, const MeasureResult& b) {
  EXPECT_EQ(a.interactions.count(), b.interactions.count());
  EXPECT_EQ(a.interactions.mean(), b.interactions.mean());
  EXPECT_EQ(a.interactions.variance(), b.interactions.variance());
  EXPECT_EQ(a.interactions.min(), b.interactions.min());
  EXPECT_EQ(a.interactions.max(), b.interactions.max());
  EXPECT_EQ(a.failed_trials, b.failed_trials);
}

/// Flips one byte of a file in place.
void flipByte(const std::string& path, std::uint64_t offset) {
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(f.is_open()) << path;
  f.seekg(static_cast<std::streamoff>(offset));
  char byte = 0;
  f.read(&byte, 1);
  ASSERT_TRUE(f.good()) << path << " @" << offset;
  byte = static_cast<char>(byte ^ 0xff);
  f.seekp(static_cast<std::streamoff>(offset));
  f.write(&byte, 1);
}

std::string readWholeFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void writeWholeFile(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

std::string manifestPathOf(const std::string& dir) {
  return (std::filesystem::path(dir) / storage::kManifestFileName).string();
}

// ----------------------------------------------------- synthetic contact log

struct LogEvent {
  std::uint64_t t, u, v;
};

/// 100 timestamped contact events: the first 60 use only the ids
/// {3,8,15,21,34,55}; the tail introduces 100..102, all above the old ids,
/// so the incrementally grown dense-id map (old map + sorted new ids)
/// equals the from-scratch sorted map and the two ingests agree event for
/// event.
std::vector<LogEvent> grownLog() {
  const std::uint64_t pool[6] = {3, 8, 15, 21, 34, 55};
  std::vector<LogEvent> events;
  events.reserve(100);
  for (std::uint64_t i = 0; i < 100; ++i) {
    std::uint64_t u, v;
    if (i < 60) {
      u = pool[i % 6];
      v = pool[(i + 2) % 6];
    } else {
      u = 100 + (i % 3);
      v = pool[i % 6];
    }
    events.push_back({i, u, v});
  }
  return events;
}

void writeLogPrefix(const std::string& path,
                    const std::vector<LogEvent>& events, std::size_t count) {
  std::ofstream out(path);
  out << "# synthetic contact log\n";
  for (std::size_t i = 0; i < count && i < events.size(); ++i)
    out << events[i].t << " " << events[i].u << " " << events[i].v << "\n";
}

// --------------------------------------------------------------- fixtures

/// A durable store with one recorded segment of 3 trials.
std::string makeRecordedStore(const std::string& tag) {
  const std::string dir = scratchDir(tag);
  DurableTraceStore store = DurableTraceStore::create(dir);
  const auto trials = sampleTrials(12, 3, 30, 77);
  store.commitSegment(12, 3, 1, {}, [&](TraceStoreWriter& writer) {
    for (const auto& trial : trials) writer.appendTrial(trial);
  });
  return dir;
}

/// Appends a second recorded segment of 2 trials through `env`.
void appendSecondSegment(const std::string& dir, Env* env) {
  DurableTraceStore store = DurableTraceStore::open(dir, {}, env);
  const auto trials = sampleTrials(12, 2, 30, 78);
  store.commitSegment(12, 2, 1, {}, [&](TraceStoreWriter& writer) {
    for (const auto& trial : trials) writer.appendTrial(trial);
  });
}

// ----------------------------------------------------------- FaultyEnv unit

TEST(StorageEnv, PosixRoundTripAndListing) {
  const std::string dir = scratchDir("posix");
  Env& env = storage::defaultEnv();
  env.mkdirs(dir);
  const std::string a = dir + "/a.bin";
  {
    auto file = env.newWritableFile(a);
    file->append("hello ", 6);
    file->append("world", 5);
    file->writeAt(0, "HELLO", 5);
    file->sync();
    file->close();
  }
  EXPECT_EQ(env.readFile(a), "HELLO world");
  EXPECT_EQ(env.fileSize(a), 11u);
  env.renameFile(a, dir + "/b.bin");
  EXPECT_FALSE(env.exists(a));
  EXPECT_EQ(env.listDir(dir), std::vector<std::string>{"b.bin"});
  env.syncDir(dir);
  env.removeFile(dir + "/b.bin");
  EXPECT_TRUE(env.listDir(dir).empty());
}

TEST(StorageEnv, CrashAtOpCountsMutationsAndPoisonsTheEnv) {
  const std::string dir = scratchDir("crash");
  FaultyEnvPlan plan;
  plan.crash_at_op = 3;
  FaultyEnv env(plan);
  env.mkdirs(dir);                                   // op 0
  auto file = env.newWritableFile(dir + "/f.bin");   // op 1
  file->append("aaaa", 4);                           // op 2
  EXPECT_THROW(file->append("bbbb", 4), EnvCrash);   // op 3 -> crash
  EXPECT_TRUE(env.crashed());
  EXPECT_EQ(env.opCount(), 4u);
  EXPECT_THROW(env.mkdirs(dir + "/sub"), EnvCrash);  // poisoned
  // Reads still work post-crash (recovery inspects the disk).
  EXPECT_TRUE(env.exists(dir));
}

TEST(StorageEnv, TornWriteFaultKeepsAtMostAPrefix) {
  const std::string dir = scratchDir("torn");
  FaultyEnvPlan plan;
  plan.faults = {{2, FaultyEnvPlan::Fault::kTornWrite}};
  FaultyEnv env(plan);
  env.mkdirs(dir);
  auto file = env.newWritableFile(dir + "/f.bin");
  const std::string payload(100, 'x');
  EXPECT_THROW(file->append(payload.data(), payload.size()),
               std::runtime_error);
  EXPECT_FALSE(env.crashed());  // transient fault, not a crash
  EXPECT_LE(env.fileSize(dir + "/f.bin"), payload.size());
}

TEST(StorageEnv, EnospcFaultWritesNothing) {
  const std::string dir = scratchDir("enospc");
  FaultyEnvPlan plan;
  plan.faults = {{3, FaultyEnvPlan::Fault::kEnospc}};
  FaultyEnv env(plan);
  env.mkdirs(dir);
  auto file = env.newWritableFile(dir + "/f.bin");
  file->append("aaaa", 4);
  EXPECT_THROW(file->append("bbbb", 4), std::runtime_error);
  file->close();
  EXPECT_EQ(env.readFile(dir + "/f.bin"), "aaaa");
}

TEST(StorageEnv, CrashLosesOnlyUnsyncedBytes) {
  const std::string dir = scratchDir("lose");
  // The scratch dir predates the env, so it is durable and the crash
  // outcomes below concern only the file written through the env.
  storage::defaultEnv().mkdirs(dir);
  FaultyEnvPlan plan;
  plan.crash_at_op = 5;
  FaultyEnv env(plan);
  env.mkdirs(dir);                                  // op 0 (already durable)
  const std::string path = dir + "/f.bin";
  auto file = env.newWritableFile(path);            // op 1
  file->append("AAAA", 4);                          // op 2
  file->sync();                                     // op 3: durable
  env.syncDir(dir);                                 // op 4: entry durable
  EXPECT_THROW(file->append("BBBBBBBB", 8), EnvCrash);  // op 5
  file->close();
  env.loseUnsyncedData();
  const std::string content = storage::defaultEnv().readFile(path);
  ASSERT_GE(content.size(), 4u);
  EXPECT_EQ(content.substr(0, 4), "AAAA");
  EXPECT_LE(content.size(), 12u);
}

TEST(StorageEnv, CrashedRenameLandsOnExactlyOneSide) {
  const std::string dir = scratchDir("rename");
  storage::defaultEnv().mkdirs(dir);  // durable before the env exists
  FaultyEnvPlan plan;
  plan.crash_at_op = 6;
  FaultyEnv env(plan);
  env.mkdirs(dir);                                    // op 0 (already durable)
  {
    auto file = env.newWritableFile(dir + "/a.bin");  // op 1
    file->append("data", 4);                          // op 2
    file->sync();                                     // op 3
    file->close();
  }
  env.syncDir(dir);  // op 4: a.bin's dir entry is durable before the rename
  env.renameFile(dir + "/a.bin", dir + "/b.bin");     // op 5 (unsynced)
  EXPECT_THROW(env.mkdirs(dir + "/sub"), EnvCrash);   // op 6
  env.loseUnsyncedData();
  Env& real = storage::defaultEnv();
  EXPECT_NE(real.exists(dir + "/a.bin"), real.exists(dir + "/b.bin"));
  const std::string survivor =
      real.exists(dir + "/a.bin") ? dir + "/a.bin" : dir + "/b.bin";
  EXPECT_EQ(real.readFile(survivor), "data");
}

TEST(StorageEnv, PlanDrawIsDeterministic) {
  const FaultyEnvPlan a = FaultyEnvPlan::draw(42, 200, 0.3);
  const FaultyEnvPlan b = FaultyEnvPlan::draw(42, 200, 0.3);
  ASSERT_EQ(a.faults.size(), b.faults.size());
  EXPECT_FALSE(a.faults.empty());
  for (std::size_t i = 0; i < a.faults.size(); ++i)
    EXPECT_EQ(a.faults[i], b.faults[i]);
  const FaultyEnvPlan c = FaultyEnvPlan::draw(43, 200, 0.3);
  EXPECT_NE(a.faults, c.faults);
}

// ------------------------------------------------------------- manifest

TEST(StorageManifest, SnapshotRoundTripLastRecordWins) {
  const std::string dir = scratchDir("mft");
  Env& env = storage::defaultEnv();
  env.mkdirs(dir);
  storage::ManifestVersion v1;
  v1.generation = 1;
  v1.node_count = 9;
  v1.total_trials = 3;
  v1.imported_events = 60;
  v1.import_event_hash = 0x1234abcdULL;
  v1.id_map_file = "idmap-000001.map";
  v1.segments = {{"seg-000001", 0, 3}};
  storage::writeManifestSnapshot(env, dir, v1);

  storage::ManifestVersion v2 = v1;
  v2.generation = 2;
  v2.total_trials = 5;
  v2.segments.push_back({"seg-000002", 3, 2});
  storage::appendManifestSnapshot(env, dir, v2);

  const auto read = storage::readManifest(env, manifestPathOf(dir));
  ASSERT_TRUE(read.version.has_value());
  EXPECT_FALSE(read.tail_torn);
  EXPECT_EQ(read.valid_bytes, read.file_bytes);
  EXPECT_EQ(read.version->generation, 2u);
  EXPECT_EQ(read.version->node_count, 9u);
  EXPECT_EQ(read.version->total_trials, 5u);
  EXPECT_EQ(read.version->imported_events, 60u);
  EXPECT_EQ(read.version->import_event_hash, 0x1234abcdULL);
  EXPECT_EQ(read.version->id_map_file, "idmap-000001.map");
  ASSERT_EQ(read.version->segments.size(), 2u);
  EXPECT_EQ(read.version->segments[1].name, "seg-000002");
  EXPECT_EQ(read.version->segments[1].base_trial, 3u);
  EXPECT_EQ(read.version->segments[1].trials, 2u);
}

TEST(StorageManifest, TornTailFallsBackToLastIntactSnapshot) {
  const std::string dir = scratchDir("mft_torn");
  Env& env = storage::defaultEnv();
  env.mkdirs(dir);
  storage::ManifestVersion v1;
  v1.generation = 1;
  v1.segments = {{"seg-000001", 0, 3}};
  storage::writeManifestSnapshot(env, dir, v1);
  const std::string intact = readWholeFile(manifestPathOf(dir));
  storage::ManifestVersion v2 = v1;
  v2.generation = 2;
  storage::appendManifestSnapshot(env, dir, v2);
  const std::string grown = readWholeFile(manifestPathOf(dir));
  // Tear the second record: keep the first snapshot plus half the append.
  const std::size_t cut = intact.size() + (grown.size() - intact.size()) / 2;
  writeWholeFile(manifestPathOf(dir), grown.substr(0, cut));

  const auto read = storage::readManifest(env, manifestPathOf(dir));
  ASSERT_TRUE(read.version.has_value());
  EXPECT_TRUE(read.tail_torn);
  EXPECT_EQ(read.valid_bytes, intact.size());
  EXPECT_LT(read.valid_bytes, read.file_bytes);
  EXPECT_EQ(read.version->generation, 1u);
}

TEST(StorageManifest, BadMagicThrows) {
  const std::string dir = scratchDir("mft_magic");
  storage::defaultEnv().mkdirs(dir);
  writeWholeFile(manifestPathOf(dir), "NOTAMANIFEST");
  EXPECT_THROW(
      storage::readManifest(storage::defaultEnv(), manifestPathOf(dir)),
      std::runtime_error);
}

// --------------------------------------------------------- durable store

TEST(DurableStore, RecordCommitRoundTrip) {
  const std::string dir = scratchDir("rt");
  DurableTraceStore store = DurableTraceStore::create(dir);
  const auto trials = sampleTrials(12, 3, 30, 77);
  store.commitSegment(12, 3, 1, {}, [&](TraceStoreWriter& writer) {
    for (const auto& trial : trials) writer.appendTrial(trial);
  });
  EXPECT_EQ(store.version().generation, 1u);
  EXPECT_EQ(store.trialCount(), 3u);
  EXPECT_EQ(store.nodeCount(), 12u);

  DurableTraceStore reopened = DurableTraceStore::open(dir);
  EXPECT_EQ(reopened.version().generation, 1u);
  EXPECT_TRUE(reopened.removedOrphans().empty());
  EXPECT_FALSE(reopened.repairedManifestTail());
  expectTrialsEqual(decodeAll(reopened.openStore()), trials);
}

TEST(DurableStore, AppendedSegmentsReplayLikeOneStore) {
  const std::string dir = makeRecordedStore("app");
  appendSecondSegment(dir, nullptr);

  DurableTraceStore store = DurableTraceStore::open(dir);
  EXPECT_EQ(store.version().generation, 2u);
  EXPECT_EQ(store.trialCount(), 5u);
  ASSERT_EQ(store.version().segments.size(), 2u);
  EXPECT_EQ(store.version().segments[1].base_trial, 3u);

  auto all = sampleTrials(12, 3, 30, 77);
  for (auto& trial : sampleTrials(12, 2, 30, 78)) all.push_back(trial);
  const std::string flat = scratchDir("app_flat");
  {
    TraceStoreWriter writer(flat, 12, all.size(), 1, {});
    for (const auto& trial : all) writer.appendTrial(trial);
    writer.finish();
  }
  const TraceStore composite = store.openStore();
  expectTrialsEqual(decodeAll(composite), all);
  expectIdentical(replayStats(composite), replayStats(TraceStore::open(flat)));
}

TEST(DurableStore, CompactMergesLegacySegmentsIntoIndexedV4) {
  const std::string dir = scratchDir("cmp");
  DurableTraceStore store = DurableTraceStore::create(dir);
  const auto first = sampleTrials(12, 3, 30, 91);
  const auto second = sampleTrials(12, 2, 30, 92);
  TraceWriterOptions v2;
  v2.format_version = dynagraph::kTraceFormatVersionV2;
  store.commitSegment(12, 3, 2, v2, [&](TraceStoreWriter& writer) {
    for (const auto& trial : first) writer.appendTrial(trial);
  });
  TraceWriterOptions v3;
  v3.format_version = dynagraph::kTraceFormatVersionV3;
  store.commitSegment(12, 2, 1, v3, [&](TraceStoreWriter& writer) {
    for (const auto& trial : second) writer.appendTrial(trial);
  });
  auto all = first;
  for (const auto& trial : second) all.push_back(trial);
  const MeasureResult before = replayStats(store.openStore());

  store.compact();  // default writer options: indexed v4

  EXPECT_EQ(store.version().generation, 3u);
  ASSERT_EQ(store.version().segments.size(), 1u);
  EXPECT_EQ(store.trialCount(), 5u);
  const TraceStore compacted = store.openStore();
  EXPECT_EQ(compacted.formatVersion(), dynagraph::kTraceFormatVersionV4);
  expectTrialsEqual(decodeAll(compacted), all);
  expectIdentical(replayStats(compacted), before);

  // The old generations are gone from disk and a reopen sees no orphans.
  DurableTraceStore reopened = DurableTraceStore::open(dir);
  EXPECT_TRUE(reopened.removedOrphans().empty());
  ASSERT_EQ(reopened.version().segments.size(), 1u);
  expectTrialsEqual(decodeAll(reopened.openStore()), all);
}

TEST(DurableStore, OpenSweepsOrphansButKeepsForeignFiles) {
  const std::string dir = makeRecordedStore("sweep");
  Env& env = storage::defaultEnv();
  env.mkdirs(dir + "/tmp-seg-000099");
  writeWholeFile(dir + "/tmp-seg-000099/shard-00000.trace", "partial");
  env.mkdirs(dir + "/seg-000042");
  writeWholeFile(dir + "/idmap-000033.map", "stale");
  writeWholeFile(dir + "/notes.txt", "keep me");

  DurableTraceStore store = DurableTraceStore::open(dir);
  EXPECT_EQ(store.removedOrphans().size(), 3u);
  EXPECT_FALSE(env.exists(dir + "/tmp-seg-000099"));
  EXPECT_FALSE(env.exists(dir + "/seg-000042"));
  EXPECT_FALSE(env.exists(dir + "/idmap-000033.map"));
  EXPECT_EQ(env.readFile(dir + "/notes.txt"), "keep me");
  expectTrialsEqual(decodeAll(store.openStore()), sampleTrials(12, 3, 30, 77));
}

TEST(DurableStore, UncommittedGenerationIsInvisibleAfterTornManifestTail) {
  const std::string dir = makeRecordedStore("uncommitted");
  const std::string before = readWholeFile(manifestPathOf(dir));
  appendSecondSegment(dir, nullptr);
  const std::string after = readWholeFile(manifestPathOf(dir));
  ASSERT_GT(after.size(), before.size());
  // Simulate a crash that tore the second commit's manifest record: the
  // second segment is fully on disk but its commit never landed intact.
  writeWholeFile(manifestPathOf(dir), after.substr(0, before.size() + 12));

  DurableTraceStore store = DurableTraceStore::open(dir);
  EXPECT_TRUE(store.repairedManifestTail());
  EXPECT_EQ(store.version().generation, 1u);
  EXPECT_EQ(store.trialCount(), 3u);
  // The uncommitted generation was swept as an orphan...
  const auto& orphans = store.removedOrphans();
  EXPECT_TRUE(std::any_of(orphans.begin(), orphans.end(),
                          [](const std::string& path) {
                            return path.find("seg-000002") != std::string::npos;
                          }));
  expectTrialsEqual(decodeAll(store.openStore()), sampleTrials(12, 3, 30, 77));
  // ...and the repaired tail accepts new commits.
  appendSecondSegment(dir, nullptr);
  EXPECT_EQ(DurableTraceStore::open(dir).trialCount(), 5u);
}

TEST(DurableStore, OpenAndCreateValidateTheDirectory) {
  const std::string dir = scratchDir("validate");
  EXPECT_THROW(DurableTraceStore::open(dir), std::runtime_error);
  storage::defaultEnv().mkdirs(dir);
  EXPECT_THROW(DurableTraceStore::open(dir), std::runtime_error);  // no MANIFEST
  EXPECT_FALSE(DurableTraceStore::isDurableStore(dir));
  DurableTraceStore::create(dir);
  EXPECT_TRUE(DurableTraceStore::isDurableStore(dir));
  EXPECT_THROW(DurableTraceStore::create(dir), std::runtime_error);
  EXPECT_THROW(DurableTraceStore::open(dir).openStore(), std::runtime_error);
}

// ------------------------------------- allow_partial x manifest recovery

TEST(DurableStoreRecovery, CorruptCommittedShardQuarantinesWithByteOffset) {
  const std::string dir = makeRecordedStore("corrupt");
  appendSecondSegment(dir, nullptr);
  DurableTraceStore store = DurableTraceStore::open(dir);
  // Flip a payload byte of the second segment's shard, past the 80-byte
  // v4 header and the first 17-byte block frame.
  const std::string shard = dir + "/seg-000002/shard-00000.trace";
  flipByte(shard, 120);

  // Header validation alone cannot see it; the payload walk can.
  EXPECT_NO_THROW(store.openStore());
  TraceStoreOpenOptions verify;
  verify.verify_payloads = true;
  try {
    store.openStore(verify);
    FAIL() << "verify_payloads missed the corruption";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("at byte"), std::string::npos) << what;
    EXPECT_NE(what.find("block"), std::string::npos) << what;
  }

  // A partial verified open quarantines the shard — with the offset and
  // block context in the reason — and serves the intact prefix.
  TraceStoreOpenOptions partial = verify;
  partial.allow_partial = true;
  const TraceStore opened = store.openStore(partial);
  ASSERT_EQ(opened.quarantined().size(), 1u);
  EXPECT_NE(opened.quarantined()[0].path.find("seg-000002"),
            std::string::npos);
  EXPECT_NE(opened.quarantined()[0].reason.find("at byte"),
            std::string::npos);
  EXPECT_NE(opened.quarantined()[0].reason.find("block"), std::string::npos);
  EXPECT_EQ(opened.trialCount(), 3u);
  expectTrialsEqual(decodeAll(opened), sampleTrials(12, 3, 30, 77));
}

TEST(DurableStoreRecovery, QuarantinedShardZeroProbesForward) {
  const std::string dir = scratchDir("probe");
  DurableTraceStore store = DurableTraceStore::create(dir);
  const auto trials = sampleTrials(12, 8, 30, 93);
  store.commitSegment(12, 8, 4, {}, [&](TraceStoreWriter& writer) {
    for (const auto& trial : trials) writer.appendTrial(trial);
  });
  // Corrupt shard 0's header so even its shard count is unreadable.
  flipByte(dir + "/seg-000001/shard-00000.trace", 30);

  EXPECT_THROW(store.openStore(), std::runtime_error);
  TraceStoreOpenOptions partial;
  partial.allow_partial = true;
  const TraceStore opened = store.openStore(partial);
  ASSERT_EQ(opened.quarantined().size(), 1u);
  EXPECT_NE(opened.quarantined()[0].path.find("shard-00000"),
            std::string::npos);
  EXPECT_EQ(opened.shardHeaders().size(), 3u);
  EXPECT_EQ(opened.trialCount(), 8u);  // global ids keep the gap
  // The usable shards serve exactly trials 2..7 under their recorded ids.
  EXPECT_EQ(opened.shardHeaders().front().base_trial, 2u);
  expectTrialsEqual(
      decodeAll(opened),
      std::vector<InteractionSequence>(trials.begin() + 2, trials.end()));
}

TEST(DurableStoreRecovery, OrphanTempSegmentNeverShadowsTheCommit) {
  const std::string dir = makeRecordedStore("orphan_tmp");
  // A crashed in-flight commit: a complete-looking tmp segment on disk.
  std::filesystem::copy(dir + "/seg-000001", dir + "/tmp-seg-000002",
                        std::filesystem::copy_options::recursive);
  DurableTraceStore store = DurableTraceStore::open(dir);
  ASSERT_EQ(store.removedOrphans().size(), 1u);
  EXPECT_NE(store.removedOrphans()[0].find("tmp-seg-000002"),
            std::string::npos);
  EXPECT_EQ(store.trialCount(), 3u);
  expectTrialsEqual(decodeAll(store.openStore()), sampleTrials(12, 3, 30, 77));
}

// ------------------------------------------------------ incremental import

TEST(DurableImport, FreshImportMatchesPlainImporter) {
  const auto events = grownLog();
  const std::string log = scratchDir("imp_log") + ".txt";
  writeLogPrefix(log, events, 100);
  ContactImportOptions options;
  options.trials = 5;

  const std::string plain = scratchDir("imp_plain");
  dynagraph::importContactTrace(log, plain, 1, options);

  const std::string durable = scratchDir("imp_durable");
  const auto result =
      storage::importContactTraceDurable(log, durable, 1, options);
  EXPECT_TRUE(result.created);
  EXPECT_EQ(result.appended_events, 100u);
  EXPECT_EQ(result.appended_trials, 5u);
  EXPECT_EQ(result.total_events, 100u);

  DurableTraceStore store = DurableTraceStore::open(durable);
  EXPECT_EQ(store.version().imported_events, 100u);
  EXPECT_EQ(store.nodeCount(), 9u);
  EXPECT_EQ(store.loadIdMap(),
            (std::vector<std::uint64_t>{3, 8, 15, 21, 34, 55, 100, 101, 102}));
  expectTrialsEqual(decodeAll(store.openStore()),
                    decodeAll(TraceStore::open(plain)));
}

TEST(DurableImport, GrownLogAppendsOnlyNewEvents) {
  const auto events = grownLog();
  const std::string log60 = scratchDir("grow_log60") + ".txt";
  const std::string log100 = scratchDir("grow_log100") + ".txt";
  writeLogPrefix(log60, events, 60);
  writeLogPrefix(log100, events, 100);
  const std::string dir = scratchDir("grow_store");

  ContactImportOptions base_options;
  base_options.trials = 3;  // 60 events -> 3 trials of 20
  const auto base =
      storage::importContactTraceDurable(log60, dir, 1, base_options);
  EXPECT_TRUE(base.created);
  EXPECT_EQ(base.appended_events, 60u);

  ContactImportOptions grow_options;
  grow_options.trials = 2;  // 40 new events -> 2 trials of 20
  const auto grown =
      storage::importContactTraceDurable(log100, dir, 1, grow_options);
  EXPECT_FALSE(grown.created);
  EXPECT_EQ(grown.appended_events, 40u);
  EXPECT_EQ(grown.appended_trials, 2u);
  EXPECT_EQ(grown.total_events, 100u);

  DurableTraceStore store = DurableTraceStore::open(dir);
  EXPECT_EQ(store.version().segments.size(), 2u);
  EXPECT_EQ(store.trialCount(), 5u);
  EXPECT_EQ(store.nodeCount(), 9u);

  // The acceptance bar: the grown store is bit-identical (decoded trials
  // and replayed stats) to importing the full log from scratch.
  ContactImportOptions full_options;
  full_options.trials = 5;  // the same 20-event trial boundaries
  const std::string scratch = scratchDir("grow_scratch");
  storage::importContactTraceDurable(log100, scratch, 1, full_options);
  DurableTraceStore reference = DurableTraceStore::open(scratch);
  expectTrialsEqual(decodeAll(store.openStore()),
                    decodeAll(reference.openStore()));
  expectIdentical(replayStats(store.openStore()),
                  replayStats(reference.openStore()));
  EXPECT_EQ(store.loadIdMap(), reference.loadIdMap());

  // Re-importing the already-ingested log is a no-op.
  const auto noop =
      storage::importContactTraceDurable(log100, dir, 1, grow_options);
  EXPECT_EQ(noop.appended_events, 0u);
  EXPECT_EQ(DurableTraceStore::open(dir).version().generation,
            store.version().generation);
}

TEST(DurableImport, RewrittenPrefixOrShrunkLogIsRejected) {
  auto events = grownLog();
  const std::string log60 = scratchDir("rej_log60") + ".txt";
  writeLogPrefix(log60, events, 60);
  const std::string dir = scratchDir("rej_store");
  ContactImportOptions options;
  options.trials = 3;
  storage::importContactTraceDurable(log60, dir, 1, options);

  // A log whose imported prefix changed is not an extension.
  events[10].u = 21;
  events[10].v = 55;
  const std::string edited = scratchDir("rej_edited") + ".txt";
  writeLogPrefix(edited, events, 100);
  try {
    storage::importContactTraceDurable(edited, dir, 1, options);
    FAIL() << "rewritten prefix accepted";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("not an extension"),
              std::string::npos)
        << e.what();
  }

  // A log that shrank below the imported prefix is rejected too.
  const std::string shrunk = scratchDir("rej_shrunk") + ".txt";
  writeLogPrefix(shrunk, grownLog(), 40);
  EXPECT_THROW(storage::importContactTraceDurable(shrunk, dir, 1, options),
               std::runtime_error);
}

// -------------------------------------------------------- kill-point sweep

/// The observable state of a store directory after recovery: whether a
/// strict durable open succeeds and, when it does, the committed
/// generation, every decoded trial, and the persisted id map.
struct StoreContent {
  bool open_failed = false;
  std::uint64_t generation = 0;
  std::vector<InteractionSequence> trials;
  std::vector<std::uint64_t> id_map;
};

StoreContent contentOf(const std::string& dir) {
  StoreContent content;
  try {
    DurableTraceStore store = DurableTraceStore::open(dir);
    content.generation = store.version().generation;
    content.id_map = store.loadIdMap();
    if (store.trialCount() > 0) content.trials = decodeAll(store.openStore());
  } catch (const std::exception&) {
    content.open_failed = true;
  }
  return content;
}

bool sameContent(const StoreContent& a, const StoreContent& b) {
  if (a.open_failed || b.open_failed) return a.open_failed == b.open_failed;
  if (a.generation != b.generation || a.id_map != b.id_map) return false;
  if (a.trials.size() != b.trials.size()) return false;
  for (std::size_t i = 0; i < a.trials.size(); ++i) {
    if (a.trials[i].length() != b.trials[i].length()) return false;
    for (core::Time t = 0; t < a.trials[i].length(); ++t)
      if (a.trials[i].at(t) != b.trials[i].at(t)) return false;
  }
  return true;
}

using Scenario = std::function<void(const std::string& dir, Env* env)>;

/// Crashes `scenario` at every op of its write schedule, recovers, and
/// asserts the store is one of the durable states the scenario's commit
/// chain can produce (`acceptable` = the intermediate committed states; the
/// pre state and the fault-free post state are always acceptable). Returns
/// the schedule length.
std::uint64_t killPointSweep(const std::string& tag,
                             const std::string& initial,
                             const Scenario& scenario,
                             std::vector<StoreContent> acceptable = {}) {
  const std::string base = scratchDir("kp_" + tag + "_base");
  copyTree(initial, base);
  acceptable.push_back(contentOf(base));  // the previous generation
  std::uint64_t ops = 0;
  {
    FaultyEnv env{FaultyEnvPlan{}};  // fault-free: sizes the schedule
    scenario(base, &env);
    ops = env.opCount();
  }
  acceptable.push_back(contentOf(base));  // the new generation
  EXPECT_GT(ops, 0u) << tag;

  for (std::uint64_t k = 0; k < ops; ++k) {
    const std::string work = scratchDir("kp_" + tag + "_k");
    copyTree(initial, work);
    FaultyEnvPlan plan;
    plan.crash_at_op = k;
    plan.seed = 0x5eedULL * (k + 1);
    FaultyEnv env(plan);
    bool crashed = false;
    try {
      scenario(work, &env);
    } catch (const EnvCrash&) {
      crashed = true;
    }
    EXPECT_TRUE(crashed) << tag << ": failpoint " << k << " never fired";
    env.loseUnsyncedData();
    const StoreContent state = contentOf(work);
    EXPECT_TRUE(std::any_of(
        acceptable.begin(), acceptable.end(),
        [&](const StoreContent& ok) { return sameContent(state, ok); }))
        << tag << ": failpoint " << k
        << ": recovered store is neither the previous nor the new durable "
           "generation (open_failed="
        << state.open_failed << ", generation=" << state.generation
        << ", trials=" << state.trials.size() << ")";
    std::filesystem::remove_all(work);
  }
  std::filesystem::remove_all(base);
  return ops;
}

TEST(StorageKillPoint, RecordCommitSweep) {
  const std::string initial = makeRecordedStore("kp_rec_init");
  const std::uint64_t ops = killPointSweep(
      "record", initial,
      [](const std::string& dir, Env* env) { appendSecondSegment(dir, env); });
  EXPECT_GT(ops, 5u);
}

TEST(StorageKillPoint, ImportCreateSweep) {
  const auto events = grownLog();
  const std::string log = scratchDir("kp_impc_log") + ".txt";
  writeLogPrefix(log, events, 60);
  ContactImportOptions options;
  options.trials = 3;
  // A from-scratch import commits twice (the empty store, then the
  // segment), so the empty generation-0 store is an acceptable
  // intermediate durable state.
  const std::string empty_dir = scratchDir("kp_impc_empty");
  DurableTraceStore::create(empty_dir);
  killPointSweep(
      "import_create", "",
      [&](const std::string& dir, Env* env) {
        storage::importContactTraceDurable(log, dir, 1, options, {}, env);
      },
      {contentOf(empty_dir)});
}

TEST(StorageKillPoint, ImportAppendSweep) {
  const auto events = grownLog();
  const std::string log60 = scratchDir("kp_impa_log60") + ".txt";
  const std::string log100 = scratchDir("kp_impa_log100") + ".txt";
  writeLogPrefix(log60, events, 60);
  writeLogPrefix(log100, events, 100);
  const std::string initial = scratchDir("kp_impa_init");
  ContactImportOptions base_options;
  base_options.trials = 3;
  storage::importContactTraceDurable(log60, initial, 1, base_options);
  ContactImportOptions grow_options;
  grow_options.trials = 2;
  killPointSweep("import_append", initial,
                 [&](const std::string& dir, Env* env) {
                   storage::importContactTraceDurable(log100, dir, 1,
                                                      grow_options, {}, env);
                 });
}

TEST(StorageKillPoint, CompactionSweep) {
  const std::string initial = makeRecordedStore("kp_cmp_init");
  appendSecondSegment(initial, nullptr);
  killPointSweep("compact", initial, [](const std::string& dir, Env* env) {
    DurableTraceStore store = DurableTraceStore::open(dir, {}, env);
    store.compact();
  });
}

// --------------------------------------------------------- recovery fuzz

// Randomized recovery torture: drawn transient faults (torn writes,
// ENOSPC, failed renames, dropped fsyncs) plus a random crash point. A
// dropped fsync can defeat the commit discipline by design, so the
// recovered store must be the previous generation, the new generation, or
// a *detected* corruption (open/openStore throws) — silent wrong data
// fails the test.
TEST(StorageRecoveryFuzz, DrawnFaultSchedulesNeverYieldATornStore) {
  int iters = 30;
  if (const char* env_iters = std::getenv("DODA_FUZZ_ITERS"))
    iters = std::max(1, std::atoi(env_iters));

  const std::string initial = makeRecordedStore("fuzz_init");
  const StoreContent before = contentOf(initial);
  const std::string after_dir = scratchDir("fuzz_after");
  copyTree(initial, after_dir);
  appendSecondSegment(after_dir, nullptr);
  const StoreContent after = contentOf(after_dir);

  util::Rng rng(20260809);
  for (int iter = 0; iter < iters; ++iter) {
    const std::string work = scratchDir("fuzz_work");
    copyTree(initial, work);
    FaultyEnvPlan plan = FaultyEnvPlan::draw(rng(), 64, 0.15);
    if (rng() & 1) plan.crash_at_op = rng() % 40;
    FaultyEnv env(plan);
    bool crashed = false;
    try {
      appendSecondSegment(work, &env);
    } catch (const EnvCrash&) {
      crashed = true;
    } catch (const std::runtime_error&) {
      // A transient injected fault surfaced to the caller: the commit
      // failed cleanly, no crash.
    }
    if (crashed) env.loseUnsyncedData();
    try {
      DurableTraceStore store = DurableTraceStore::open(work);
      StoreContent state;
      state.generation = store.version().generation;
      state.id_map = store.loadIdMap();
      if (store.trialCount() > 0)
        state.trials = decodeAll(store.openStore());
      EXPECT_TRUE(sameContent(state, before) || sameContent(state, after))
          << "iter " << iter << " (seed schedule " << plan.seed
          << "): recovered store is a third state (generation="
          << state.generation << ", trials=" << state.trials.size() << ")";
    } catch (const std::exception&) {
      // Detected corruption — acceptable under dropped fsyncs.
    }
    std::filesystem::remove_all(work);
  }
}

}  // namespace
}  // namespace doda
