// Golden statistics (hexfloat, so the comparison is bit-exact). These
// lock three refactor-invariance contracts at once:
//
//  * the adversary generators draw from the RNG in exactly the committed
//    SeedFormat::v2 one-draw-per-pair order (sequences are bit-identical
//    run to run), and SeedFormat::v1 still reproduces the legacy two-draw
//    streams (see LegacySeedFormatV1Pinned below);
//  * the frontier-based offline-optimal oracle returns exactly the values
//    the galloping reverse-broadcast search returned;
//  * the parallel executor folds outcomes identically for every thread
//    count (each config is checked at threads 1, 2 and 8).

#include <gtest/gtest.h>

#include "algorithms/full_knowledge.hpp"
#include "algorithms/future_aware.hpp"
#include "algorithms/gathering.hpp"
#include "algorithms/waiting_greedy.hpp"
#include "sim/experiment.hpp"

namespace doda::sim {
namespace {

struct Golden {
  std::size_t count;
  double mean, variance, min, max;
  std::size_t cost_count = 0;
  double cost_mean = 0.0, cost_variance = 0.0;
  std::size_t failed = 0;
};

void expectMatches(const MeasureResult& r, const Golden& g,
                   std::size_t threads) {
  EXPECT_EQ(r.interactions.count(), g.count) << "threads=" << threads;
  EXPECT_EQ(r.interactions.mean(), g.mean) << "threads=" << threads;
  EXPECT_EQ(r.interactions.variance(), g.variance) << "threads=" << threads;
  EXPECT_EQ(r.interactions.min(), g.min) << "threads=" << threads;
  EXPECT_EQ(r.interactions.max(), g.max) << "threads=" << threads;
  EXPECT_EQ(r.cost.count(), g.cost_count) << "threads=" << threads;
  if (g.cost_count > 0) {
    EXPECT_EQ(r.cost.mean(), g.cost_mean) << "threads=" << threads;
    EXPECT_EQ(r.cost.variance(), g.cost_variance) << "threads=" << threads;
  }
  EXPECT_EQ(r.failed_trials, g.failed) << "threads=" << threads;
}

AlgorithmFactory gatheringFactory() {
  return [](TrialContext&) {
    return std::make_unique<algorithms::Gathering>();
  };
}

TEST(GoldenStats, MeasureRandomizedGathering) {
  const Golden golden{24, 0x1.0f55555555555p+7, 0x1.181303b5cc0edp+12,
                      0x1.18p+5, 0x1.f8p+7};
  for (std::size_t threads : {1u, 2u, 8u}) {
    MeasureConfig config;
    config.node_count = 12;
    config.trials = 24;
    config.seed = 2026;
    config.threads = threads;
    expectMatches(measureRandomized(config, gatheringFactory()), golden,
                  threads);
  }
}

TEST(GoldenStats, MeasureRandomizedWaitingGreedy) {
  // Exercises the meetTime oracle over the batched committed randomness.
  const Golden golden{16, 0x1.4c6p+7, 0x1.2386666666664p+7,
                      0x1.14p+7, 0x1.6ap+7};
  const AlgorithmFactory factory = [](TrialContext& context) {
    return std::make_unique<algorithms::WaitingGreedy>(context.meet_time,
                                                       180);
  };
  for (std::size_t threads : {1u, 2u, 8u}) {
    MeasureConfig config;
    config.node_count = 16;
    config.trials = 16;
    config.seed = 7;
    config.threads = threads;
    expectMatches(measureRandomized(config, factory), golden, threads);
  }
}

TEST(GoldenStats, MeasureWithCostGathering) {
  // Pins the paper-cost computation (frontier-backed costOf chain).
  Golden golden{12,       0x1.8caaaaaaaaaabp+5, 0x1.eadc1f07c1f07p+9,
                0x1.6p+4, 0x1.04p+7,            12,
                0x1.8000000000001p+1, 0x1.1745d1745d174p+1};
  for (std::size_t threads : {1u, 2u, 8u}) {
    MeasureConfig config;
    config.node_count = 8;
    config.trials = 12;
    config.seed = 99;
    config.threads = threads;
    expectMatches(measureWithCost(config, 64, gatheringFactory()), golden,
                  threads);
  }
}

TEST(GoldenStats, MeasureOfflineOptimal) {
  // Pins opt(0)+1 — the frontier must agree with the legacy galloping
  // search on every trial, not just on average.
  Golden golden{10,       0x1.0e66666666666p+4, 0x1.2293e93e93e94p+5,
                0x1.cp+2, 0x1.cp+4,             10,
                0x1p+0,   0x0p+0};
  for (std::size_t threads : {1u, 2u, 8u}) {
    MeasureConfig config;
    config.node_count = 8;
    config.trials = 10;
    config.seed = 123;
    config.threads = threads;
    expectMatches(measureOfflineOptimal(config), golden, threads);
  }
}

TEST(GoldenStats, MeasureRandomizedZipf) {
  // The Zipf adversary draws node pairs itself and ignores seed_format;
  // these values are unchanged across the SeedFormat::v2 bump.
  const Golden golden{12, 0x1.28p+6, 0x1.c4745d1745d17p+10, 0x1.6p+4,
                      0x1.5cp+7};
  for (std::size_t threads : {1u, 2u, 8u}) {
    MeasureConfig config;
    config.node_count = 10;
    config.trials = 12;
    config.seed = 5;
    config.zipf_exponent = 0.8;
    config.threads = threads;
    expectMatches(measureRandomized(config, gatheringFactory()), golden,
                  threads);
  }
}

TEST(GoldenStats, MeasureMaterializedFullKnowledge) {
  Golden golden{10,     0x1.999999999999ap+4, 0x1.693e93e93e93fp+5,
                0x1p+4, 0x1.38p+5,            10,
                0x1p+0, 0x0p+0};
  const SequenceAlgorithmFactory factory =
      [](const dynagraph::InteractionSequence& seq,
         const core::SystemInfo&) {
        return std::make_unique<algorithms::FullKnowledgeOptimal>(seq);
      };
  for (std::size_t threads : {1u, 2u, 8u}) {
    MeasureConfig config;
    config.node_count = 10;
    config.trials = 10;
    config.seed = 31;
    config.threads = threads;
    expectMatches(measureMaterialized(config, 256, factory), golden,
                  threads);
  }
}

TEST(GoldenStats, MeasureMaterializedFutureAware) {
  Golden golden{10,       0x1.e666666666666p+5, 0x1.db60b60b60b62p+6,
                0x1.9p+5, 0x1.5cp+6,            10,
                0x1.4ccccccccccccp+1, 0x1.1111111111111p-2};
  const SequenceAlgorithmFactory factory =
      [](const dynagraph::InteractionSequence& seq,
         const core::SystemInfo&) {
        return std::make_unique<algorithms::FutureAware>(seq);
      };
  for (std::size_t threads : {1u, 2u, 8u}) {
    MeasureConfig config;
    config.node_count = 10;
    config.trials = 10;
    config.seed = 32;
    config.threads = threads;
    expectMatches(measureMaterialized(config, 512, factory), golden,
                  threads);
  }
}

// ------------------------------------------- legacy seed-format pinning

// SeedFormat::v1 must keep reproducing the exact pre-v2 streams forever:
// these are the golden values this suite pinned before the one-draw pair
// sampler became the default. A committed experiment that recorded its
// seeds under v1 stays replayable by setting config.seed_format.
TEST(GoldenStats, LegacySeedFormatV1Pinned) {
  const auto v1 = dynagraph::traces::SeedFormat::v1;
  for (std::size_t threads : {1u, 8u}) {
    {
      const Golden golden{24, 0x1.046aaaaaaaaabp+7, 0x1.fd5e8cfc4a34p+11,
                          0x1.b8p+5, 0x1.2bp+8};
      MeasureConfig config;
      config.node_count = 12;
      config.trials = 24;
      config.seed = 2026;
      config.threads = threads;
      config.seed_format = v1;
      expectMatches(measureRandomized(config, gatheringFactory()), golden,
                    threads);
    }
    {
      const Golden golden{16, 0x1.5d3ffffffffffp+7, 0x1.eeaaaaaaaaaacp+4,
                          0x1.48p+7, 0x1.6ap+7};
      MeasureConfig config;
      config.node_count = 16;
      config.trials = 16;
      config.seed = 7;
      config.threads = threads;
      config.seed_format = v1;
      expectMatches(measureRandomized(
                        config,
                        [](TrialContext& context) {
                          return std::make_unique<algorithms::WaitingGreedy>(
                              context.meet_time, 180);
                        }),
                    golden, threads);
    }
    {
      const Golden golden{12,        0x1.7755555555555p+5,
                          0x1.030aaaaaaaaabp+9,
                          0x1.4p+3,  0x1.78p+6,
                          12,        0x1.8aaaaaaaaaaaap+1,
                          0x1.b83e0f83e0f84p+0};
      MeasureConfig config;
      config.node_count = 8;
      config.trials = 12;
      config.seed = 99;
      config.threads = threads;
      config.seed_format = v1;
      expectMatches(measureWithCost(config, 64, gatheringFactory()), golden,
                    threads);
    }
    {
      const Golden golden{10,       0x1.319999999999ap+4,
                          0x1.c45b05b05b05cp+5,
                          0x1.4p+3, 0x1.fp+4,
                          10,       0x1p+0,
                          0x0p+0};
      MeasureConfig config;
      config.node_count = 8;
      config.trials = 10;
      config.seed = 123;
      config.threads = threads;
      config.seed_format = v1;
      expectMatches(measureOfflineOptimal(config), golden, threads);
    }
    {
      const Golden golden{10,       0x1.acccccccccccdp+4,
                          0x1.7fa4fa4fa4fa4p+5,
                          0x1.1p+4, 0x1.4p+5,
                          10,       0x1p+0,
                          0x0p+0};
      MeasureConfig config;
      config.node_count = 10;
      config.trials = 10;
      config.seed = 31;
      config.threads = threads;
      config.seed_format = v1;
      expectMatches(
          measureMaterialized(config, 256,
                              [](const dynagraph::InteractionSequence& seq,
                                 const core::SystemInfo&) {
                                return std::make_unique<
                                    algorithms::FullKnowledgeOptimal>(seq);
                              }),
          golden, threads);
    }
    {
      const Golden golden{10,        0x1.f4p+5,
                          0x1.7ce38e38e38e4p+5,
                          0x1.a8p+5, 0x1.2p+6,
                          10,        0x1.4p+1,
                          0x1.1c71c71c71c72p-2};
      MeasureConfig config;
      config.node_count = 10;
      config.trials = 10;
      config.seed = 32;
      config.threads = threads;
      config.seed_format = v1;
      expectMatches(
          measureMaterialized(config, 512,
                              [](const dynagraph::InteractionSequence& seq,
                                 const core::SystemInfo&) {
                                return std::make_unique<
                                    algorithms::FutureAware>(seq);
                              }),
          golden, threads);
    }
  }
}

}  // namespace
}  // namespace doda::sim
