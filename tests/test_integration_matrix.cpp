// Integration matrix: every algorithm against every trace family, checking
// the cross-cutting guarantees that hold whenever an execution terminates:
// exactly n-1 transfers, a validating convergecast schedule, exact
// aggregation (the sink's source set is all of V), and cost >= 1 with the
// full-knowledge algorithm at exactly cost = 1.

#include <gtest/gtest.h>

#include <memory>

#include "algorithms/full_knowledge.hpp"
#include "algorithms/future_aware.hpp"
#include "algorithms/gathering.hpp"
#include "algorithms/random_policy.hpp"
#include "algorithms/spanning_tree_aggregation.hpp"
#include "algorithms/waiting.hpp"
#include "algorithms/waiting_greedy.hpp"
#include "analysis/convergecast.hpp"
#include "dynagraph/edge_markov.hpp"
#include "dynagraph/meet_time_index.hpp"
#include "dynagraph/traces.hpp"
#include "test_helpers.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace doda {
namespace {

namespace traces = dynagraph::traces;
using core::NodeId;
using core::Time;
using dynagraph::InteractionSequence;

struct MatrixCase {
  std::string trace_name;
  std::string algorithm_name;
};

/// Trace families under test, all with node 0 as sink and >= 9 nodes.
InteractionSequence makeTrace(const std::string& name, std::size_t& n,
                              util::Rng& rng) {
  if (name == "uniform") {
    n = 10;
    return traces::uniformRandom(n, 400 * n * n, rng);
  }
  if (name == "zipf") {
    n = 10;
    return traces::zipfRandom(n, 400 * n * n, 0.8, rng);
  }
  if (name == "body") {
    traces::BodySensorConfig config;
    config.sensors = 9;
    config.slots = 4000;
    n = 10;
    return traces::bodySensorTrace(config, rng);
  }
  if (name == "vehicular") {
    traces::VehicularConfig config;
    config.width = 5;
    config.height = 5;
    config.cars = 9;
    config.steps = 30000;
    n = 10;
    return traces::vehicularTrace(config, rng);
  }
  if (name == "edge-markov") {
    traces::EdgeMarkovConfig config;
    config.nodes = 10;
    config.p_on = 0.05;
    config.p_off = 0.4;
    config.steps = 8000;
    n = 10;
    return traces::edgeMarkovTrace(config, rng);
  }
  throw std::logic_error("unknown trace family: " + name);
}

std::unique_ptr<core::DodaAlgorithm> makeAlgorithm(
    const std::string& name, const InteractionSequence& trace, std::size_t n,
    dynagraph::MeetTimeIndex& index) {
  if (name == "waiting") return std::make_unique<algorithms::Waiting>();
  if (name == "gathering") return std::make_unique<algorithms::Gathering>();
  if (name == "waiting-greedy")
    return std::make_unique<algorithms::WaitingGreedy>(
        index,
        static_cast<Time>(util::closed_form::waitingGreedyTau(n)));
  if (name == "tree")
    return std::make_unique<algorithms::SpanningTreeAggregation>(
        trace.underlyingGraph(n));
  if (name == "full")
    return std::make_unique<algorithms::FullKnowledgeOptimal>(trace);
  if (name == "future")
    return std::make_unique<algorithms::FutureAware>(trace);
  if (name == "random")
    return std::make_unique<algorithms::RandomPolicy>(0xABC);
  throw std::logic_error("unknown algorithm: " + name);
}

class Matrix : public ::testing::TestWithParam<MatrixCase> {};

TEST_P(Matrix, TerminatedRunsSatisfyAllGuarantees) {
  const auto& param = GetParam();
  util::Rng rng(std::hash<std::string>{}(param.trace_name) ^ 0x5eed);
  std::size_t n = 0;
  const auto trace = makeTrace(param.trace_name, n, rng);
  ASSERT_GE(trace.length(), 1u);
  dynagraph::MeetTimeIndex index(trace, 0, n);
  const auto algorithm =
      makeAlgorithm(param.algorithm_name, trace, n, index);

  const auto r = testing::runOn(*algorithm, trace, n, 0);
  // Feasibility differs per trace; only terminated runs are judged, but
  // the dense random families must always terminate.
  if (param.trace_name == "uniform" || param.trace_name == "zipf") {
    ASSERT_TRUE(r.terminated) << param.algorithm_name;
  }
  if (!r.terminated) GTEST_SKIP() << "trace too short for this algorithm";

  EXPECT_EQ(r.schedule.size(), n - 1);
  std::string err;
  EXPECT_TRUE(
      core::validateConvergecastSchedule(r.schedule, trace, {n, 0}, &err))
      << err;
  // Exact aggregation: the sink folded every origin exactly once.
  EXPECT_EQ(r.sink_datum.sources.size(), n);
  EXPECT_DOUBLE_EQ(r.sink_datum.value, static_cast<double>(n));
  // Cost sanity: >= 1 always; the full-knowledge algorithm achieves 1.
  const auto cost =
      analysis::costOf(trace, n, 0, r.last_transmission_time);
  EXPECT_GE(cost, 1u);
  if (param.algorithm_name == "full") {
    EXPECT_EQ(cost, 1u);
  }
}

std::vector<MatrixCase> allCases() {
  std::vector<MatrixCase> cases;
  for (const char* trace :
       {"uniform", "zipf", "body", "vehicular", "edge-markov"})
    for (const char* algorithm : {"waiting", "gathering", "waiting-greedy",
                                  "tree", "full", "future", "random"})
      cases.push_back({trace, algorithm});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    AllPairs, Matrix, ::testing::ValuesIn(allCases()),
    [](const ::testing::TestParamInfo<MatrixCase>& param_info) {
      std::string name = param_info.param.trace_name + "_" +
                         param_info.param.algorithm_name;
      for (char& ch : name)
        if (ch == '-') ch = '_';
      return name;
    });

}  // namespace
}  // namespace doda
