#include "dynagraph/oracles.hpp"

#include <gtest/gtest.h>

#include "algorithms/gathering.hpp"
#include "algorithms/waiting_greedy.hpp"
#include "dynagraph/traces.hpp"
#include "test_helpers.hpp"
#include "util/rng.hpp"

namespace doda::dynagraph {
namespace {

using testing::ix;
using testing::runOn;

InteractionSequence sampleSeq() {
  // Node 1 meets sink at t=4; node 2 at t=9.
  std::vector<Interaction> v;
  for (int k = 0; k < 4; ++k) v.push_back(ix(1, 2));
  v.push_back(ix(0, 1));  // t=4
  for (int k = 0; k < 4; ++k) v.push_back(ix(1, 2));
  v.push_back(ix(0, 2));  // t=9
  return InteractionSequence(std::move(v));
}

TEST(ExactOracle, MatchesIndex) {
  const auto seq = sampleSeq();
  MeetTimeIndex index(seq, 0, 3);
  ExactMeetTimeOracle oracle(index);
  EXPECT_EQ(oracle.meetTime(1, 0), 4u);
  EXPECT_EQ(oracle.meetTime(2, 0), 9u);
  EXPECT_EQ(oracle.meetTime(0, 7), 7u);
}

TEST(WindowedOracle, HidesMeetingsBeyondWindow) {
  const auto seq = sampleSeq();
  MeetTimeIndex index(seq, 0, 3);
  WindowedMeetTimeOracle oracle(index, /*window=*/5);
  EXPECT_EQ(oracle.meetTime(1, 0), 4u);       // 4 - 0 <= 5: visible
  EXPECT_EQ(oracle.meetTime(2, 0), kNever);   // 9 - 0 > 5: hidden
  EXPECT_EQ(oracle.meetTime(2, 5), 9u);       // 9 - 5 <= 5: visible now
  EXPECT_EQ(oracle.window(), 5u);
}

TEST(WindowedOracle, ZeroWindowHidesEverything) {
  const auto seq = sampleSeq();
  MeetTimeIndex index(seq, 0, 3);
  WindowedMeetTimeOracle oracle(index, 0);
  EXPECT_EQ(oracle.meetTime(1, 0), kNever);
  EXPECT_EQ(oracle.meetTime(1, 3), kNever);  // even one step ahead is hidden
  // The sink's identity meetTime is never hidden (exact == t).
  EXPECT_EQ(oracle.meetTime(0, 6), 6u);
}

TEST(WindowedOracle, InfiniteWindowIsExact) {
  const auto seq = sampleSeq();
  MeetTimeIndex index(seq, 0, 3);
  WindowedMeetTimeOracle oracle(index, kNever);
  EXPECT_EQ(oracle.meetTime(1, 0), 4u);
  EXPECT_EQ(oracle.meetTime(2, 0), 9u);
}

TEST(QuantizedOracle, RoundsUpToBucket) {
  const auto seq = sampleSeq();
  MeetTimeIndex index(seq, 0, 3);
  QuantizedMeetTimeOracle oracle(index, /*bucket=*/4);
  EXPECT_EQ(oracle.meetTime(1, 0), 4u);   // exact multiple stays
  EXPECT_EQ(oracle.meetTime(2, 0), 12u);  // 9 -> ceil to 12
  EXPECT_EQ(oracle.bucket(), 4u);
}

TEST(QuantizedOracle, NeverStaysNever) {
  const auto seq = sampleSeq();
  MeetTimeIndex index(seq, 0, 3);
  QuantizedMeetTimeOracle oracle(index, 8);
  EXPECT_EQ(oracle.meetTime(1, 100), kNever);
}

TEST(QuantizedOracle, BucketOnePreservesExactness) {
  util::Rng rng(5);
  const auto seq = traces::uniformRandom(6, 300, rng);
  MeetTimeIndex index(seq, 0, 6);
  QuantizedMeetTimeOracle quantized(index, 1);
  ExactMeetTimeOracle exact(index);
  for (int probe = 0; probe < 100; ++probe) {
    const NodeId u = static_cast<NodeId>(rng.below(6));
    const Time t = rng.below(300);
    EXPECT_EQ(quantized.meetTime(u, t), exact.meetTime(u, t));
  }
}

TEST(QuantizedOracle, PreservesOrderWeakly) {
  // Rounding up is monotone: m1 <= m2 implies round(m1) <= round(m2).
  util::Rng rng(6);
  const auto seq = traces::uniformRandom(8, 500, rng);
  MeetTimeIndex index(seq, 0, 8);
  ExactMeetTimeOracle exact(index);
  QuantizedMeetTimeOracle q(index, 16);
  for (int probe = 0; probe < 200; ++probe) {
    const NodeId u = static_cast<NodeId>(rng.below(8));
    const NodeId v = static_cast<NodeId>(rng.below(8));
    const Time t = rng.below(500);
    const Time mu = exact.meetTime(u, t), mv = exact.meetTime(v, t);
    if (mu <= mv) {
      EXPECT_LE(q.meetTime(u, t), q.meetTime(v, t));
    }
  }
}

TEST(WaitingGreedyWithOracle, DegradedOracleStillTerminates) {
  util::Rng rng(7);
  const std::size_t n = 10;
  const auto seq = traces::uniformRandom(n, 200 * n * n, rng);
  MeetTimeIndex index(seq, 0, n);
  WindowedMeetTimeOracle oracle(index, 50);
  algorithms::WaitingGreedy wg(oracle, /*tau=*/300);
  const auto r = runOn(wg, seq, n, 0);
  EXPECT_TRUE(r.terminated);
  EXPECT_EQ(r.schedule.size(), n - 1);
}

TEST(WaitingGreedyWithOracle, ZeroWindowBehavesLikeAlwaysTransmit) {
  // With no foresight every meetTime is kNever > tau: the later... both
  // equal kNever, so m1 <= m2 and tau < m2: u1 (smaller id) receives —
  // exactly Gathering's tie-break.
  util::Rng rng(8);
  const std::size_t n = 8;
  const auto seq = traces::uniformRandom(n, 100 * n * n, rng);
  MeetTimeIndex index(seq, 0, n);
  WindowedMeetTimeOracle blind(index, 0);
  algorithms::WaitingGreedy wg(blind, 100);
  algorithms::Gathering ga;
  const auto r_wg = runOn(wg, seq, n, 0);
  const auto r_ga = runOn(ga, seq, n, 0);
  ASSERT_TRUE(r_wg.terminated);
  ASSERT_TRUE(r_ga.terminated);
  // Non-sink interactions behave identically; sink interactions also
  // transmit (identity meetTime <= anything, kNever > tau). So the whole
  // schedule coincides with Gathering's.
  EXPECT_EQ(r_wg.schedule, r_ga.schedule);
}

}  // namespace
}  // namespace doda::dynagraph
