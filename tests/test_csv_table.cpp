#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/csv.hpp"
#include "util/table.hpp"

namespace doda::util {
namespace {

class CsvWriterTest : public ::testing::Test {
 protected:
  std::string path_ = ::testing::TempDir() + "/doda_csv_test.csv";

  void TearDown() override { std::remove(path_.c_str()); }

  std::string contents() {
    std::ifstream in(path_);
    std::stringstream ss;
    ss << in.rdbuf();
    return ss.str();
  }
};

TEST_F(CsvWriterTest, WritesHeaderAndRows) {
  {
    CsvWriter w(path_);
    w.header({"n", "algo", "interactions"});
    w.row(16, "Gathering", 225.5);
    w.row(32, "Waiting", 1984);
    EXPECT_EQ(w.rowsWritten(), 2u);
  }
  EXPECT_EQ(contents(),
            "n,algo,interactions\n16,Gathering,225.5\n32,Waiting,1984\n");
}

TEST_F(CsvWriterTest, EscapesSpecialCharacters) {
  {
    CsvWriter w(path_);
    w.row("a,b", "say \"hi\"", "line\nbreak");
  }
  EXPECT_EQ(contents(), "\"a,b\",\"say \"\"hi\"\"\",\"line\nbreak\"\n");
}

TEST_F(CsvWriterTest, HeaderAfterRowThrows) {
  CsvWriter w(path_);
  w.row(1);
  EXPECT_THROW(w.header({"x"}), std::logic_error);
}

TEST_F(CsvWriterTest, DoubleHeaderThrows) {
  CsvWriter w(path_);
  w.header({"x"});
  EXPECT_THROW(w.header({"y"}), std::logic_error);
}

TEST(CsvWriterError, UnopenablePathThrows) {
  EXPECT_THROW(CsvWriter("/nonexistent-dir-xyz/file.csv"),
               std::runtime_error);
}

TEST(Table, AlignsColumnsAndRightAlignsNumbers) {
  Table t({"name", "value"});
  t.addRow({"alpha", "1"});
  t.addRow({"b", "22.5"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("-----"), std::string::npos);
  // Numeric column is right-aligned: "22.5" ends its field.
  EXPECT_NE(out.find("   1"), std::string::npos);
}

TEST(Table, RejectsMismatchedRow) {
  Table t({"a", "b"});
  EXPECT_THROW(t.addRow({"only-one"}), std::invalid_argument);
}

TEST(Table, RejectsEmptyColumnList) {
  EXPECT_THROW(Table({}), std::invalid_argument);
}

TEST(Table, NumFormatsPrecision) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(2.0, 0), "2");
}

TEST(Table, CountsRows) {
  Table t({"x"});
  EXPECT_EQ(t.rowCount(), 0u);
  t.addRow({"1"});
  t.addRow({"2"});
  EXPECT_EQ(t.rowCount(), 2u);
}

}  // namespace
}  // namespace doda::util
