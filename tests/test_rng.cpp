#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <numeric>
#include <set>
#include <vector>

namespace doda::util {
namespace {

TEST(SplitMix64, IsDeterministic) {
  SplitMix64 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next() == b.next()) ++equal;
  EXPECT_EQ(equal, 0);
}

TEST(Rng, SameSeedSameStream) {
  Rng a(7), b(7);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(3);
  for (std::uint64_t bound : {1ull, 2ull, 7ull, 100ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.below(bound), bound);
  }
}

TEST(Rng, BelowZeroThrows) {
  Rng rng(3);
  EXPECT_THROW(rng.below(0), std::invalid_argument);
}

TEST(Rng, BelowOneIsAlwaysZero) {
  Rng rng(5);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, BelowCoversAllValues) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.below(10));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Rng, BelowIsRoughlyUniform) {
  Rng rng(13);
  constexpr int kBuckets = 8;
  constexpr int kDraws = 80000;
  std::array<int, kBuckets> counts{};
  for (int i = 0; i < kDraws; ++i) ++counts[rng.below(kBuckets)];
  const double expected = static_cast<double>(kDraws) / kBuckets;
  for (int c : counts) {
    EXPECT_GT(c, expected * 0.9);
    EXPECT_LT(c, expected * 1.1);
  }
}

TEST(Rng, BetweenInclusiveBounds) {
  Rng rng(17);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const auto x = rng.between(-3, 3);
    EXPECT_GE(x, -3);
    EXPECT_LE(x, 3);
    saw_lo |= x == -3;
    saw_hi |= x == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, BetweenSingleton) {
  Rng rng(19);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(rng.between(5, 5), 5);
}

TEST(Rng, BetweenInvalidThrows) {
  Rng rng(19);
  EXPECT_THROW(rng.between(2, 1), std::invalid_argument);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(23);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.uniform();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
    sum += x;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(29);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, ChanceMatchesProbability) {
  Rng rng(31);
  int hits = 0;
  for (int i = 0; i < 50000; ++i) hits += rng.chance(0.3);
  EXPECT_NEAR(hits / 50000.0, 0.3, 0.02);
}

TEST(Rng, WeightedRespectsWeights) {
  Rng rng(37);
  const std::vector<double> w{1.0, 0.0, 3.0};
  std::array<int, 3> counts{};
  for (int i = 0; i < 40000; ++i) ++counts[rng.weighted(w)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.3);
}

TEST(Rng, WeightedSingleIndex) {
  Rng rng(41);
  const std::vector<double> w{2.5};
  for (int i = 0; i < 20; ++i) EXPECT_EQ(rng.weighted(w), 0u);
}

TEST(Rng, WeightedRejectsBadInput) {
  Rng rng(43);
  EXPECT_THROW(rng.weighted(std::vector<double>{}), std::invalid_argument);
  EXPECT_THROW(rng.weighted(std::vector<double>{0.0, 0.0}),
               std::invalid_argument);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(47);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  auto shuffled = v;
  rng.shuffle(shuffled);
  EXPECT_TRUE(std::is_permutation(v.begin(), v.end(), shuffled.begin()));
  EXPECT_NE(v, shuffled);  // astronomically unlikely to be identity
}

TEST(Rng, ShuffleHandlesSmallInputs) {
  Rng rng(53);
  std::vector<int> empty;
  rng.shuffle(empty);
  EXPECT_TRUE(empty.empty());
  std::vector<int> one{42};
  rng.shuffle(one);
  EXPECT_EQ(one, std::vector<int>{42});
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(59);
  Rng b = a.split();
  int equal = 0;
  for (int i = 0; i < 100; ++i)
    if (a() == b()) ++equal;
  EXPECT_LT(equal, 3);
}

TEST(Rng, SatisfiesUniformRandomBitGenerator) {
  static_assert(std::uniform_random_bit_generator<Rng>);
  EXPECT_EQ(Rng::min(), 0u);
  EXPECT_EQ(Rng::max(), std::numeric_limits<std::uint64_t>::max());
}

}  // namespace
}  // namespace doda::util
