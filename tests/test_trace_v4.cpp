// Tests of the v4 record layout (dynagraph/trace_io): group-unit
// round-trips over both backends, SWAR-vs-scalar decode parity under a
// randomized fuzz (DODA_FUZZ_ITERS-scalable), block-parallel decode of a
// single trial (TraceShardReader::setDecodePool) bit-identical to the
// sequential path at several pool widths, the pool plumbing through
// replayShards, cross-format v1..v4 statistic identity, and the v4
// writer-side validation (node-count bound).

#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "algorithms/gathering.hpp"
#include "dynagraph/trace_io.hpp"
#include "dynagraph/traces.hpp"
#include "sim/trace_replay.hpp"
#include "util/rng.hpp"

namespace doda {
namespace {

using dynagraph::Interaction;
using dynagraph::InteractionSequence;
using dynagraph::TraceDecodePool;
using dynagraph::TraceReadBackend;
using dynagraph::TraceShardReader;
using dynagraph::TraceStore;
using dynagraph::TraceStoreWriter;
using dynagraph::TraceWriterOptions;
using sim::MeasureResult;

std::string scratchDir(const std::string& tag) {
  static int counter = 0;
  const auto dir = std::filesystem::path(testing::TempDir()) /
                   ("doda_trace_v4_" + tag + "_" + std::to_string(::getpid()) +
                    "_" + std::to_string(counter++));
  std::filesystem::remove_all(dir);
  return dir.string();
}

TraceWriterOptions versionOptions(std::uint16_t version) {
  TraceWriterOptions options;
  options.format_version = version;
  return options;
}

std::vector<InteractionSequence> sampleTrials(std::size_t n,
                                              std::size_t count,
                                              core::Time length,
                                              std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<InteractionSequence> trials;
  trials.reserve(count);
  for (std::size_t i = 0; i < count; ++i)
    trials.push_back(dynagraph::traces::uniformRandom(n, length, rng));
  return trials;
}

void writeStore(const std::string& dir, std::size_t n,
                const std::vector<InteractionSequence>& trials,
                std::uint32_t shards, const TraceWriterOptions& options) {
  TraceStoreWriter writer(dir, n, trials.size(), shards, options);
  for (const auto& trial : trials) writer.appendTrial(trial);
  writer.finish();
}

std::vector<InteractionSequence> decodeStore(const TraceStore& store,
                                             TraceReadBackend backend,
                                             bool force_scalar = false) {
  std::vector<InteractionSequence> trials;
  for (std::size_t s = 0; s < store.shardCount(); ++s) {
    auto reader = store.openShard(s, backend);
    reader.setForceScalarDecode(force_scalar);
    while (reader.beginTrial()) trials.push_back(reader.readRest());
  }
  return trials;
}

void expectTrialsEqual(const std::vector<InteractionSequence>& a,
                       const std::vector<InteractionSequence>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].length(), b[i].length()) << "trial " << i;
    for (core::Time t = 0; t < a[i].length(); ++t)
      ASSERT_EQ(a[i].at(t), b[i].at(t)) << "trial " << i << " t=" << t;
  }
}

/// A decode pool backed by plain std::threads — the shape replayShards
/// lends readers, reduced to its contract for direct unit testing.
TraceDecodePool threadPool(std::size_t workers) {
  TraceDecodePool pool;
  pool.workers = workers;
  pool.run = [workers](std::size_t count,
                       const std::function<void(std::size_t)>& task) {
    std::atomic<std::size_t> next{0};
    std::vector<std::thread> threads;
    const std::size_t spawn = std::min(workers, count);
    threads.reserve(spawn);
    for (std::size_t w = 0; w < spawn; ++w)
      threads.emplace_back([&] {
        for (std::size_t i = next.fetch_add(1); i < count;
             i = next.fetch_add(1))
          task(i);
      });
    for (auto& t : threads) t.join();
  };
  return pool;
}

void expectIdentical(const MeasureResult& a, const MeasureResult& b) {
  EXPECT_EQ(a.interactions.count(), b.interactions.count());
  EXPECT_EQ(a.interactions.mean(), b.interactions.mean());
  EXPECT_EQ(a.interactions.variance(), b.interactions.variance());
  EXPECT_EQ(a.interactions.min(), b.interactions.min());
  EXPECT_EQ(a.interactions.max(), b.interactions.max());
  EXPECT_EQ(a.failed_trials, b.failed_trials);
}

// ------------------------------------------------------------ round trip

TEST(TraceV4RoundTrip, GroupUnitsPreserveEveryTrialOnBothBackends) {
  // Odd and even lengths (the final group unit carries one vs two
  // interactions), zero-length and single-interaction trials, and a
  // length crossing several blocks.
  util::Rng rng(11);
  std::vector<InteractionSequence> trials;
  for (core::Time length : {0, 1, 2, 3, 16, 17, 4096, 4097})
    trials.push_back(dynagraph::traces::uniformRandom(20, length, rng));
  const std::string dir = scratchDir("rt");
  TraceWriterOptions options;
  options.block_bytes = 512;  // force many blocks
  writeStore(dir, 20, trials, 2, options);

  const auto store = TraceStore::open(dir);
  EXPECT_EQ(store.formatVersion(), dynagraph::kTraceFormatVersionV4);
  for (const auto backend :
       {TraceReadBackend::kAuto, TraceReadBackend::kStream})
    expectTrialsEqual(decodeStore(store, backend), trials);
}

TEST(TraceV4RoundTrip, WideNodeIdsRoundTrip) {
  // Nodes near 2^20 exercise the 3-byte delta/gap fields; the zigzag
  // deltas swing across the whole range.
  const auto trials = sampleTrials(std::size_t{1} << 20, 3, 400, 5);
  const std::string dir = scratchDir("wide");
  writeStore(dir, std::size_t{1} << 20, trials, 1, TraceWriterOptions{});
  const auto store = TraceStore::open(dir);
  for (const auto backend :
       {TraceReadBackend::kAuto, TraceReadBackend::kStream})
    expectTrialsEqual(decodeStore(store, backend), trials);
}

TEST(TraceV4RoundTrip, UncompressedBlocksRoundTrip) {
  auto trials = sampleTrials(24, 4, 700, 9);
  const std::string dir = scratchDir("rawblocks");
  TraceWriterOptions options;
  options.compress = false;
  options.block_bytes = 256;
  writeStore(dir, 24, trials, 1, options);
  const auto store = TraceStore::open(dir);
  for (const auto backend :
       {TraceReadBackend::kAuto, TraceReadBackend::kStream})
    expectTrialsEqual(decodeStore(store, backend), trials);
}

TEST(TraceV4Writer, RejectsNodeCountAboveRecordLayoutBound) {
  // v4 group fields are at most 4 bytes, so the writer refuses stores it
  // could not encode; v3 still accepts the same node count.
  const std::size_t too_many = (std::size_t{1} << 31) + 1;
  EXPECT_THROW(TraceStoreWriter(scratchDir("huge"), too_many, 1, 1,
                                TraceWriterOptions{}),
               std::invalid_argument);
  EXPECT_NO_THROW(TraceStoreWriter(
      scratchDir("huge_v3"), too_many, 1, 1,
      versionOptions(dynagraph::kTraceFormatVersionV3)));
}

// --------------------------------------------------- SWAR/scalar parity

TEST(TraceV4Decode, ScalarFallbackMatchesSwarFastPath) {
  // Fuzz: random node counts (1-4 byte fields), random trial lengths
  // (odd/even/empty), random block sizes (units straddling block
  // boundaries and the SWAR window-slack gate). The forced-scalar decode
  // must agree with the default decode interaction for interaction.
  std::size_t iters = 30;
  if (const char* env = std::getenv("DODA_FUZZ_ITERS"))
    iters = static_cast<std::size_t>(std::strtoull(env, nullptr, 10));
  util::Rng rng(20260808);
  for (std::size_t iter = 0; iter < iters; ++iter) {
    const std::size_t n = 2 + rng.below((iter % 4 == 0) ? 2000000 : 64);
    std::vector<InteractionSequence> trials;
    const std::size_t count = 1 + rng.below(5);
    for (std::size_t i = 0; i < count; ++i)
      trials.push_back(dynagraph::traces::uniformRandom(
          n, rng.below(600), rng));
    const std::string dir = scratchDir("fuzz");
    TraceWriterOptions options;
    options.block_bytes = 128 + rng.below(1024);
    options.compress = rng.below(4) != 0;
    writeStore(dir, n, trials, 1, options);

    const auto store = TraceStore::open(dir);
    for (const auto backend :
         {TraceReadBackend::kAuto, TraceReadBackend::kStream}) {
      const auto fast = decodeStore(store, backend, false);
      const auto scalar = decodeStore(store, backend, true);
      expectTrialsEqual(fast, trials);
      expectTrialsEqual(scalar, trials);
    }
    std::filesystem::remove_all(dir);
  }
}

// ------------------------------------------------- block-parallel decode

TEST(TraceV4Parallel, PooledReadRestIsBitIdenticalToSequential) {
  // One shard, a handful of long trials split over many small blocks; a
  // pooled readRest must return exactly the sequential bytes at every
  // pool width, on both backends, for both v3 and v4.
  for (const std::uint16_t version : {dynagraph::kTraceFormatVersionV3,
                                      dynagraph::kTraceFormatVersionV4}) {
    const auto trials = sampleTrials(48, 3, 20000, 123);
    const std::string dir = scratchDir("pool");
    TraceWriterOptions options;
    options.format_version = version;
    options.block_bytes = 1024;
    writeStore(dir, 48, trials, 1, options);

    const auto store = TraceStore::open(dir);
    for (const auto backend :
         {TraceReadBackend::kAuto, TraceReadBackend::kStream}) {
      const auto sequential = decodeStore(store, backend);
      expectTrialsEqual(sequential, trials);
      for (const std::size_t workers : {2u, 8u}) {
        const TraceDecodePool pool = threadPool(workers);
        auto reader = store.openShard(0, backend);
        reader.setDecodePool(&pool);
        std::vector<InteractionSequence> pooled;
        while (reader.beginTrial()) pooled.push_back(reader.readRest());
        expectTrialsEqual(pooled, trials);
      }
    }
    std::filesystem::remove_all(dir);
  }
}

TEST(TraceV4Parallel, PooledReaderStaysAlignedAfterEachTrial) {
  // readRest on the pool path must leave the cursor at the trial's end so
  // interleaving pooled and plain decodes cannot desync the stream.
  const auto trials = sampleTrials(32, 4, 8000, 321);
  const std::string dir = scratchDir("align");
  TraceWriterOptions options;
  options.block_bytes = 512;
  writeStore(dir, 32, trials, 1, options);

  const auto store = TraceStore::open(dir);
  const TraceDecodePool pool = threadPool(4);
  auto reader = store.openShard(0, TraceReadBackend::kAuto);
  reader.setDecodePool(&pool);
  for (std::size_t i = 0; i < trials.size(); ++i) {
    ASSERT_TRUE(reader.beginTrial());
    if (i % 2 == 0) {
      expectTrialsEqual({reader.readRest()}, {trials[i]});
    } else {
      // Plain sequential decode of the odd trials through next().
      InteractionSequence seq;
      for (core::Time t = 0; t < trials[i].length(); ++t) {
        const auto interaction = reader.next();
        ASSERT_TRUE(interaction.has_value());
        seq.append(*interaction);
      }
      expectTrialsEqual({seq}, {trials[i]});
    }
  }
  EXPECT_FALSE(reader.beginTrial());
}

TEST(TraceV4Parallel, ReplayShardsLendsSpareWorkersToSingleTrials) {
  // Two huge trials in one shard with an 8-thread replay: replayShards
  // has more workers than spans, so readers decode block-parallel. The
  // statistics must be bit-identical to the serial replay on both
  // backends.
  const auto trials = sampleTrials(64, 2, 60000, 2026);
  const std::string dir = scratchDir("replay");
  TraceWriterOptions options;
  options.block_bytes = 4096;
  writeStore(dir, 64, trials, 1, options);

  const auto store = TraceStore::open(dir);
  const sim::AlgorithmFactory factory = [](sim::TrialContext&) {
    return std::make_unique<algorithms::Gathering>();
  };
  sim::ReplayConfig serial;
  serial.threads = 1;
  const MeasureResult reference = sim::replayTrace(store, serial, factory);
  EXPECT_EQ(reference.interactions.count() + reference.failed_trials,
            trials.size());
  for (const auto backend :
       {TraceReadBackend::kAuto, TraceReadBackend::kStream}) {
    for (const std::size_t threads : {2u, 8u}) {
      sim::ReplayConfig config;
      config.threads = threads;
      config.backend = backend;
      expectIdentical(sim::replayTrace(store, config, factory), reference);
    }
  }
}

// ------------------------------------------------------- cross format

TEST(TraceV4CrossVersion, AllFormatsDecodeToIdenticalTrials) {
  const auto trials = sampleTrials(40, 5, 3000, 55);
  std::vector<std::vector<InteractionSequence>> decoded;
  for (const std::uint16_t version :
       {dynagraph::kTraceFormatVersionV1, dynagraph::kTraceFormatVersionV2,
        dynagraph::kTraceFormatVersionV3,
        dynagraph::kTraceFormatVersionV4}) {
    const std::string dir =
        scratchDir("xfmt_v" + std::to_string(version));
    writeStore(dir, 40, trials, 2, versionOptions(version));
    const auto store = TraceStore::open(dir);
    EXPECT_EQ(store.formatVersion(), version);
    decoded.push_back(decodeStore(store, TraceReadBackend::kAuto));
    expectTrialsEqual(decoded.back(), trials);
    std::filesystem::remove_all(dir);
  }
  for (std::size_t i = 1; i < decoded.size(); ++i)
    expectTrialsEqual(decoded[i], decoded[0]);
}

}  // namespace
}  // namespace doda
