#include <gtest/gtest.h>

#include "algorithms/gathering.hpp"
#include "algorithms/waiting.hpp"
#include "core/data.hpp"
#include "core/engine.hpp"
#include "dynagraph/traces.hpp"
#include "test_helpers.hpp"
#include "util/rng.hpp"

namespace doda::core {
namespace {

using dynagraph::InteractionSequence;
using dynagraph::kNever;
using testing::ix;
using testing::runOn;

TEST(Datum, OriginHasSingleSource) {
  const auto d = Datum::origin(3, 7.5);
  EXPECT_DOUBLE_EQ(d.value, 7.5);
  EXPECT_EQ(d.sources.toSortedVector(), std::vector<NodeId>{3});
  EXPECT_TRUE(d.containsSource(3));
  EXPECT_FALSE(d.containsSource(2));
}

TEST(AggregationFunction, SumCombinesValuesAndSources) {
  const auto agg = AggregationFunction::sum();
  auto a = Datum::origin(0, 2.0);
  const auto b = Datum::origin(2, 3.0);
  agg.aggregateInto(a, b);
  EXPECT_DOUBLE_EQ(a.value, 5.0);
  EXPECT_EQ(a.sources.toSortedVector(), (std::vector<NodeId>{0, 2}));
}

TEST(AggregationFunction, MinMaxBehave) {
  auto lo = Datum::origin(0, 2.0);
  AggregationFunction::min().aggregateInto(lo, Datum::origin(1, 5.0));
  EXPECT_DOUBLE_EQ(lo.value, 2.0);
  auto hi = Datum::origin(2, 2.0);
  AggregationFunction::max().aggregateInto(hi, Datum::origin(3, 5.0));
  EXPECT_DOUBLE_EQ(hi.value, 5.0);
}

TEST(AggregationFunction, OverlappingSourcesThrow) {
  const auto agg = AggregationFunction::sum();
  auto a = Datum::origin(0, 1.0);
  const auto dup = Datum::origin(0, 1.0);
  EXPECT_THROW(agg.aggregateInto(a, dup), std::invalid_argument);
}

TEST(AggregationFunction, CustomFunctionAndName) {
  AggregationFunction xorish("xor-ish",
                             [](double a, double b) { return a * b; });
  EXPECT_EQ(xorish.name(), "xor-ish");
  auto a = Datum::origin(0, 3.0);
  xorish.aggregateInto(a, Datum::origin(1, 4.0));
  EXPECT_DOUBLE_EQ(a.value, 12.0);
  EXPECT_THROW(AggregationFunction("bad", nullptr), std::invalid_argument);
}

TEST(Engine, RejectsDegenerateSystems) {
  EXPECT_THROW(Engine({1, 0}, AggregationFunction::sum()),
               std::invalid_argument);
  EXPECT_THROW(Engine({3, 5}, AggregationFunction::sum()),
               std::invalid_argument);
}

TEST(Engine, GatheringStyleRunAggregatesEverything) {
  algorithms::Gathering ga;
  // 0 is sink: 2->1 at t0, 1->0 at t1.
  const InteractionSequence seq{ix(1, 2), ix(0, 1)};
  const auto r = runOn(ga, seq, 3, 0);
  EXPECT_TRUE(r.terminated);
  EXPECT_EQ(r.interactions_to_terminate, 2u);
  EXPECT_EQ(r.last_transmission_time, 1u);
  ASSERT_EQ(r.schedule.size(), 2u);
  EXPECT_EQ(r.schedule[0], (TransmissionRecord{0, 2, 1}));
  EXPECT_EQ(r.schedule[1], (TransmissionRecord{1, 1, 0}));
  // count() aggregation: sink ends with all 3 origins.
  EXPECT_DOUBLE_EQ(r.sink_datum.value, 3.0);
  EXPECT_EQ(r.sink_datum.sources.toSortedVector(),
            (std::vector<NodeId>{0, 1, 2}));
}

TEST(Engine, InitialValuesFlowThroughAggregation) {
  algorithms::Gathering ga;
  Engine engine({3, 0}, AggregationFunction::sum());
  adversary::SequenceAdversary adv(InteractionSequence{ix(1, 2), ix(0, 1)});
  RunOptions options;
  options.initial_values = {10.0, 20.0, 30.0};
  const auto r = engine.run(ga, adv, options);
  EXPECT_TRUE(r.terminated);
  EXPECT_DOUBLE_EQ(r.sink_datum.value, 60.0);
}

TEST(Engine, RunIntoReusesScratchAcrossTrials) {
  // The same scratch serves many runs; every run must behave exactly like
  // a fresh-state run (no leakage of ownership flags, data, or schedule).
  algorithms::Gathering ga;
  Engine engine({3, 0}, AggregationFunction::count());
  Engine::Scratch scratch;
  const InteractionSequence seq{ix(1, 2), ix(0, 1)};
  for (int trial = 0; trial < 3; ++trial) {
    adversary::SequenceAdversary adv(seq);
    const auto r = engine.runInto(scratch, ga, adv);
    EXPECT_TRUE(r.terminated);
    EXPECT_EQ(r.interactions_to_terminate, 2u);
    ASSERT_EQ(r.schedule.size(), 2u);
    EXPECT_DOUBLE_EQ(r.sink_datum.value, 3.0);
    EXPECT_EQ(r.sink_datum.sources.toSortedVector(),
              (std::vector<NodeId>{0, 1, 2}));
  }
  // The scratch also adapts to a different system size.
  Engine bigger({5, 0}, AggregationFunction::count());
  algorithms::Gathering ga2;
  adversary::SequenceAdversary adv(
      InteractionSequence{ix(3, 4), ix(2, 3), ix(1, 2), ix(0, 1)});
  const auto r = bigger.runInto(scratch, ga2, adv);
  EXPECT_TRUE(r.terminated);
  EXPECT_DOUBLE_EQ(r.sink_datum.value, 5.0);
}

TEST(Engine, CaptureScheduleOffOmitsOnlyTheSchedule) {
  algorithms::Gathering ga;
  Engine engine({3, 0}, AggregationFunction::count());
  const InteractionSequence seq{ix(1, 2), ix(0, 1)};
  RunOptions options;
  options.capture_schedule = false;
  adversary::SequenceAdversary adv(seq);
  const auto r = engine.run(ga, adv, options);
  EXPECT_TRUE(r.terminated);
  EXPECT_TRUE(r.schedule.empty());
  // Everything else matches the capturing run.
  adversary::SequenceAdversary adv2(seq);
  const auto full = engine.run(ga, adv2);
  EXPECT_EQ(r.interactions_to_terminate, full.interactions_to_terminate);
  EXPECT_EQ(r.last_transmission_time, full.last_transmission_time);
  EXPECT_DOUBLE_EQ(r.sink_datum.value, full.sink_datum.value);
  EXPECT_EQ(full.schedule.size(), 2u);
}

TEST(Engine, InitialValuesSizeMismatchThrows) {
  algorithms::Gathering ga;
  Engine engine({3, 0}, AggregationFunction::sum());
  adversary::SequenceAdversary adv(InteractionSequence{ix(1, 2)});
  RunOptions options;
  options.initial_values = {1.0};
  EXPECT_THROW(engine.run(ga, adv, options), std::invalid_argument);
}

TEST(Engine, NoTransferWhenOneEndpointHasNoData) {
  algorithms::Gathering ga;
  // 2->1, then {1,2} again: 2 has no data, nothing must happen.
  const InteractionSequence seq{ix(1, 2), ix(1, 2), ix(1, 2)};
  const auto r = runOn(ga, seq, 3, 0);
  EXPECT_FALSE(r.terminated);
  EXPECT_EQ(r.schedule.size(), 1u);
  EXPECT_EQ(r.interactions_dispatched, 3u);
}

TEST(Engine, TransmitOnceIsStructural) {
  algorithms::Gathering ga;
  // After 1 transmits to 0, later {0,1} and {1,2} interactions are inert.
  const InteractionSequence seq{ix(0, 1), ix(0, 1), ix(1, 2)};
  const auto r = runOn(ga, seq, 3, 0);
  ASSERT_EQ(r.schedule.size(), 1u);
  EXPECT_EQ(r.schedule[0].sender, 1u);
  EXPECT_FALSE(r.terminated);  // node 2 still owns data
}

/// Algorithm that tries to make the sink transmit (model violation).
class EvilSinkSender final : public DodaAlgorithm {
 public:
  std::string name() const override { return "EvilSinkSender"; }
  std::optional<NodeId> decide(const Interaction& i, Time,
                               const ExecutionView& view) override {
    const auto sink = view.system().sink;
    if (i.involves(sink)) return i.other(sink);  // sink would be the sender
    return std::nullopt;
  }
};

TEST(Engine, SinkTransmissionIsRejected) {
  EvilSinkSender evil;
  Engine engine({3, 0}, AggregationFunction::sum());
  adversary::SequenceAdversary adv(InteractionSequence{ix(0, 1)});
  EXPECT_THROW(engine.run(evil, adv), ModelViolation);
}

/// Algorithm that names a non-endpoint as receiver.
class EvilOutsider final : public DodaAlgorithm {
 public:
  std::string name() const override { return "EvilOutsider"; }
  std::optional<NodeId> decide(const Interaction& i, Time,
                               const ExecutionView& view) override {
    for (NodeId u = 0; u < view.system().node_count; ++u)
      if (!i.involves(u)) return u;
    return std::nullopt;
  }
};

TEST(Engine, NonEndpointReceiverIsRejected) {
  EvilOutsider evil;
  Engine engine({3, 0}, AggregationFunction::sum());
  adversary::SequenceAdversary adv(InteractionSequence{ix(1, 2)});
  EXPECT_THROW(engine.run(evil, adv), ModelViolation);
}

TEST(Engine, OutOfRangeInteractionIsRejected) {
  algorithms::Gathering ga;
  Engine engine({3, 0}, AggregationFunction::sum());
  adversary::SequenceAdversary adv(InteractionSequence{ix(1, 7)});
  EXPECT_THROW(engine.run(ga, adv), ModelViolation);
}

TEST(Engine, StopsAtMaxInteractions) {
  algorithms::Waiting w;
  const InteractionSequence seq{ix(1, 2), ix(1, 2), ix(1, 2), ix(1, 2)};
  const auto r = runOn(w, seq, 3, 0, /*max_interactions=*/2);
  EXPECT_FALSE(r.terminated);
  EXPECT_EQ(r.interactions_dispatched, 2u);
}

TEST(Engine, StopsImmediatelyAfterTermination) {
  algorithms::Gathering ga;
  const InteractionSequence seq{ix(1, 2), ix(0, 1), ix(1, 2), ix(1, 2)};
  const auto r = runOn(ga, seq, 3, 0);
  EXPECT_TRUE(r.terminated);
  // No interactions are consumed after the terminating one.
  EXPECT_EQ(r.interactions_dispatched, 2u);
}

TEST(Engine, AdversaryExhaustionEndsRun) {
  algorithms::Waiting w;
  const InteractionSequence seq{ix(1, 2)};
  const auto r = runOn(w, seq, 3, 0);
  EXPECT_FALSE(r.terminated);
  EXPECT_EQ(r.interactions_dispatched, 1u);
  EXPECT_EQ(r.last_transmission_time, kNever);
}

TEST(ValidateSchedule, AcceptsValidConvergecast) {
  const InteractionSequence seq{ix(1, 2), ix(0, 1)};
  const std::vector<TransmissionRecord> sched{{0, 2, 1}, {1, 1, 0}};
  std::string err;
  EXPECT_TRUE(validateConvergecastSchedule(sched, seq, {3, 0}, &err)) << err;
}

TEST(ValidateSchedule, RejectsIncomplete) {
  const InteractionSequence seq{ix(1, 2), ix(0, 1)};
  const std::vector<TransmissionRecord> sched{{0, 2, 1}};
  EXPECT_FALSE(validateConvergecastSchedule(sched, seq, {3, 0}));
}

TEST(ValidateSchedule, RejectsMismatchedInteraction) {
  const InteractionSequence seq{ix(1, 2), ix(0, 1)};
  const std::vector<TransmissionRecord> sched{{0, 2, 0}, {1, 1, 0}};
  std::string err;
  EXPECT_FALSE(validateConvergecastSchedule(sched, seq, {3, 0}, &err));
  EXPECT_NE(err.find("does not match"), std::string::npos);
}

TEST(ValidateSchedule, RejectsSinkSender) {
  const InteractionSequence seq{ix(0, 1), ix(0, 2)};
  const std::vector<TransmissionRecord> sched{{0, 0, 1}, {1, 2, 0}};
  EXPECT_FALSE(validateConvergecastSchedule(sched, seq, {3, 0}));
}

TEST(ValidateSchedule, RejectsNonIncreasingTimes) {
  const InteractionSequence seq{ix(1, 2), ix(0, 1)};
  const std::vector<TransmissionRecord> sched{{1, 1, 0}, {0, 2, 1}};
  EXPECT_FALSE(validateConvergecastSchedule(sched, seq, {3, 0}));
}

TEST(ValidateSchedule, RejectsSendAfterTransmit) {
  // 2 sends to 1, then 1 receives from... then 2 "receives" — invalid.
  const InteractionSequence seq{ix(1, 2), ix(1, 2), ix(0, 1)};
  const std::vector<TransmissionRecord> sched{
      {0, 2, 1}, {1, 1, 2}, {2, 1, 0}};
  EXPECT_FALSE(validateConvergecastSchedule(sched, seq, {3, 0}));
}

TEST(EngineSchedule, EveryTerminatedRunValidates) {
  util::Rng rng(5);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 3 + rng.below(8);
    const auto seq = dynagraph::traces::uniformRandom(n, 40 * n, rng);
    algorithms::Gathering ga;
    const auto r = runOn(ga, seq, n, 0);
    if (!r.terminated) continue;
    std::string err;
    EXPECT_TRUE(validateConvergecastSchedule(r.schedule, seq,
                                             {n, 0}, &err))
        << err;
  }
}

}  // namespace
}  // namespace doda::core
