#include "analysis/broadcast.hpp"

#include <gtest/gtest.h>

#include "dynagraph/traces.hpp"
#include "test_helpers.hpp"
#include "util/rng.hpp"

namespace doda::analysis {
namespace {

using dynagraph::kNever;
using testing::ix;

TEST(GreedyBroadcast, SourceIsInformedImmediately) {
  const InteractionSequence seq{ix(0, 1)};
  const auto r = greedyBroadcast(seq, 3, 2);
  EXPECT_EQ(r.informed_at[2], 0u);
  EXPECT_EQ(r.informed_count, 1u);  // {0,1} does not involve the source
  EXPECT_FALSE(r.complete(3));
  EXPECT_EQ(r.completion_time, kNever);
}

TEST(GreedyBroadcast, ChainPropagates) {
  const InteractionSequence seq{ix(0, 1), ix(1, 2), ix(2, 3)};
  const auto r = greedyBroadcast(seq, 4, 0);
  EXPECT_TRUE(r.complete(4));
  EXPECT_EQ(r.informed_at[1], 0u);
  EXPECT_EQ(r.informed_at[2], 1u);
  EXPECT_EQ(r.informed_at[3], 2u);
  EXPECT_EQ(r.completion_time, 2u);
  EXPECT_EQ(*r.informer[3], 2u);
  EXPECT_FALSE(r.informer[0].has_value());
}

TEST(GreedyBroadcast, OrderMatters) {
  // Reversed chain: 0 can only inform 1; 2 and 3 interacted too early.
  const InteractionSequence seq{ix(2, 3), ix(1, 2), ix(0, 1)};
  const auto r = greedyBroadcast(seq, 4, 0);
  EXPECT_EQ(r.informed_count, 2u);
  EXPECT_EQ(r.informed_at[1], 2u);
  EXPECT_EQ(r.informed_at[2], kNever);
}

TEST(GreedyBroadcast, FromOffsetSkipsPrefix) {
  const InteractionSequence seq{ix(0, 1), ix(0, 1), ix(1, 2)};
  const auto r = greedyBroadcast(seq, 3, 0, /*from=*/1);
  EXPECT_TRUE(r.complete(3));
  EXPECT_EQ(r.informed_at[1], 1u);
}

TEST(GreedyBroadcast, SourceOutOfRangeThrows) {
  const InteractionSequence seq{ix(0, 1)};
  EXPECT_THROW(greedyBroadcast(seq, 2, 5), std::out_of_range);
}

TEST(BroadcastDuration, CountsFromStart) {
  const InteractionSequence seq{ix(0, 1), ix(1, 2)};
  EXPECT_EQ(broadcastDuration(seq, 3, 0), 2u);
  EXPECT_EQ(broadcastDuration(seq, 3, 2), kNever);
}

TEST(GreedyBroadcast, StarCompletesInOneRound) {
  const auto star = dynagraph::traces::starGraph(6, 0);
  const auto seq = dynagraph::traces::roundRobin(star, 1);
  const auto r = greedyBroadcast(seq, 6, 0);
  EXPECT_TRUE(r.complete(6));
  for (core::NodeId u = 1; u < 6; ++u) EXPECT_EQ(*r.informer[u], 0u);
}

class BroadcastMonotone : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BroadcastMonotone, InformedSetGrowsWithWindow) {
  util::Rng rng(GetParam());
  const std::size_t n = 5 + rng.below(10);
  const auto seq = dynagraph::traces::uniformRandom(n, 100, rng);
  std::size_t prev = 0;
  for (core::Time end = 10; end <= 100; end += 10) {
    const auto r = greedyBroadcast(seq.slice(0, end), n, 0);
    EXPECT_GE(r.informed_count, prev);
    prev = r.informed_count;
  }
}

TEST_P(BroadcastMonotone, InformersWereInformedEarlier) {
  util::Rng rng(GetParam() + 500);
  const std::size_t n = 4 + rng.below(10);
  const auto seq = dynagraph::traces::uniformRandom(n, 200, rng);
  const auto r = greedyBroadcast(seq, n, 0);
  for (core::NodeId u = 0; u < n; ++u) {
    if (!r.informer[u]) continue;
    EXPECT_LE(r.informed_at[*r.informer[u]], r.informed_at[u]);
    // The informing interaction really is I_t = {u, informer}.
    EXPECT_EQ(seq.at(r.informed_at[u]),
              core::Interaction(u, *r.informer[u]));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BroadcastMonotone,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

}  // namespace
}  // namespace doda::analysis
