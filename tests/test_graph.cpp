#include <gtest/gtest.h>

#include <algorithm>

#include "dynagraph/traces.hpp"
#include "graph/spanning_tree.hpp"
#include "graph/static_graph.hpp"
#include "graph/union_find.hpp"
#include "util/rng.hpp"

namespace doda::graph {
namespace {

namespace traces = dynagraph::traces;

TEST(StaticGraph, StartsEmpty) {
  StaticGraph g(5);
  EXPECT_EQ(g.nodeCount(), 5u);
  EXPECT_EQ(g.edgeCount(), 0u);
  EXPECT_FALSE(g.hasEdge(0, 1));
}

TEST(StaticGraph, AddEdgeIsIdempotentAndSymmetric) {
  StaticGraph g(4);
  g.addEdge(1, 3);
  g.addEdge(3, 1);
  EXPECT_EQ(g.edgeCount(), 1u);
  EXPECT_TRUE(g.hasEdge(1, 3));
  EXPECT_TRUE(g.hasEdge(3, 1));
  EXPECT_EQ(g.degree(1), 1u);
  EXPECT_EQ(g.degree(3), 1u);
}

TEST(StaticGraph, RejectsSelfLoopAndBadIds) {
  StaticGraph g(3);
  EXPECT_THROW(g.addEdge(1, 1), std::invalid_argument);
  EXPECT_THROW(g.addEdge(0, 3), std::out_of_range);
  EXPECT_THROW(g.degree(5), std::out_of_range);
}

TEST(StaticGraph, NeighborsAreSorted) {
  StaticGraph g(5);
  g.addEdge(2, 4);
  g.addEdge(2, 0);
  g.addEdge(2, 3);
  const auto nb = g.neighbors(2);
  EXPECT_TRUE(std::is_sorted(nb.begin(), nb.end()));
  EXPECT_EQ(nb.size(), 3u);
}

TEST(StaticGraph, EdgesAreLexicographic) {
  StaticGraph g(4);
  g.addEdge(3, 2);
  g.addEdge(1, 0);
  const auto es = g.edges();
  ASSERT_EQ(es.size(), 2u);
  EXPECT_EQ(es[0], std::make_pair(NodeId{0}, NodeId{1}));
  EXPECT_EQ(es[1], std::make_pair(NodeId{2}, NodeId{3}));
}

TEST(StaticGraph, BfsDistancesOnPath) {
  const auto g = traces::pathGraph(5);
  const auto d = g.bfsDistances(0);
  for (NodeId u = 0; u < 5; ++u) {
    ASSERT_TRUE(d[u].has_value());
    EXPECT_EQ(*d[u], u);
  }
}

TEST(StaticGraph, BfsDetectsUnreachable) {
  StaticGraph g(4);
  g.addEdge(0, 1);
  const auto d = g.bfsDistances(0);
  EXPECT_TRUE(d[1].has_value());
  EXPECT_FALSE(d[2].has_value());
  EXPECT_FALSE(g.isConnected());
}

TEST(StaticGraph, TreeDetection) {
  EXPECT_TRUE(traces::pathGraph(6).isTree());
  EXPECT_TRUE(traces::starGraph(6, 0).isTree());
  EXPECT_FALSE(traces::ringGraph(6).isTree());
  EXPECT_FALSE(traces::completeGraph(4).isTree());
}

class TopologyParam : public ::testing::TestWithParam<std::size_t> {};

TEST_P(TopologyParam, BuildersProduceConnectedGraphs) {
  const std::size_t n = GetParam();
  util::Rng rng(n);
  EXPECT_TRUE(traces::pathGraph(n).isConnected());
  EXPECT_TRUE(traces::starGraph(n, 0).isConnected());
  EXPECT_TRUE(traces::completeGraph(n).isConnected());
  const auto tree = traces::randomTree(n, rng);
  EXPECT_TRUE(tree.isTree());
  const auto dense = traces::randomConnected(n, n, rng);
  EXPECT_TRUE(dense.isConnected());
  EXPECT_GE(dense.edgeCount(), n - 1);
}

TEST_P(TopologyParam, CompleteGraphHasAllEdges) {
  const std::size_t n = GetParam();
  const auto g = traces::completeGraph(n);
  EXPECT_EQ(g.edgeCount(), n * (n - 1) / 2);
}

INSTANTIATE_TEST_SUITE_P(Sizes, TopologyParam,
                         ::testing::Values(3, 5, 8, 16, 33, 64));

TEST(SpanningTree, RequiresConnectedGraph) {
  StaticGraph g(4);
  g.addEdge(0, 1);
  EXPECT_THROW(SpanningTree::bfs(g, 0), std::invalid_argument);
}

TEST(SpanningTree, RootHasNoParent) {
  const auto t = SpanningTree::bfs(traces::completeGraph(5), 2);
  EXPECT_EQ(t.root(), 2u);
  EXPECT_FALSE(t.parent(2).has_value());
  EXPECT_EQ(t.depth(2), 0u);
}

TEST(SpanningTree, PathGraphGivesChain) {
  const auto t = SpanningTree::bfs(traces::pathGraph(5), 0);
  for (NodeId u = 1; u < 5; ++u) {
    ASSERT_TRUE(t.parent(u).has_value());
    EXPECT_EQ(*t.parent(u), u - 1);
    EXPECT_EQ(t.depth(u), u);
  }
  EXPECT_EQ(t.height(), 4u);
}

TEST(SpanningTree, StarFromCenterIsFlat) {
  const auto t = SpanningTree::bfs(traces::starGraph(7, 0), 0);
  EXPECT_EQ(t.height(), 1u);
  EXPECT_EQ(t.children(0).size(), 6u);
}

TEST(SpanningTree, IsDeterministic) {
  util::Rng rng(99);
  const auto g = traces::randomConnected(20, 15, rng);
  const auto t1 = SpanningTree::bfs(g, 0);
  const auto t2 = SpanningTree::bfs(g, 0);
  for (NodeId u = 0; u < 20; ++u) EXPECT_EQ(t1.parent(u), t2.parent(u));
}

class SpanningTreeParam : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SpanningTreeParam, ParentChildConsistency) {
  util::Rng rng(GetParam());
  const std::size_t n = 10 + rng.below(40);
  const auto g = traces::randomConnected(n, n / 2, rng);
  const auto t = SpanningTree::bfs(g, 0);
  std::size_t child_links = 0;
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId c : t.children(u)) {
      EXPECT_EQ(*t.parent(c), u);
      EXPECT_EQ(t.depth(c), t.depth(u) + 1);
      // Tree edges must exist in the graph.
      EXPECT_TRUE(g.hasEdge(u, c));
      ++child_links;
    }
  }
  EXPECT_EQ(child_links, n - 1);
}

TEST_P(SpanningTreeParam, PostOrderVisitsChildrenFirst) {
  util::Rng rng(GetParam() + 1000);
  const std::size_t n = 5 + rng.below(30);
  const auto g = traces::randomConnected(n, n, rng);
  const auto t = SpanningTree::bfs(g, 0);
  const auto order = t.postOrder();
  ASSERT_EQ(order.size(), n);
  std::vector<std::size_t> position(n);
  for (std::size_t i = 0; i < n; ++i) position[order[i]] = i;
  for (NodeId u = 0; u < n; ++u)
    for (NodeId c : t.children(u)) EXPECT_LT(position[c], position[u]);
  EXPECT_EQ(order.back(), t.root());
}

TEST_P(SpanningTreeParam, SubtreeSizesSumCorrectly) {
  util::Rng rng(GetParam() + 2000);
  const std::size_t n = 5 + rng.below(30);
  const auto g = traces::randomConnected(n, 3, rng);
  const auto t = SpanningTree::bfs(g, 0);
  EXPECT_EQ(t.subtreeSize(0), n);
  for (NodeId u = 0; u < n; ++u) {
    std::size_t sum = 1;
    for (NodeId c : t.children(u)) sum += t.subtreeSize(c);
    EXPECT_EQ(t.subtreeSize(u), sum);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SpanningTreeParam,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(UnionFind, StartsDisjoint) {
  UnionFind uf(4);
  EXPECT_EQ(uf.setCount(), 4u);
  EXPECT_FALSE(uf.connected(0, 1));
  EXPECT_EQ(uf.setSize(2), 1u);
}

TEST(UnionFind, UniteMergesAndReportsNovelty) {
  UnionFind uf(4);
  EXPECT_TRUE(uf.unite(0, 1));
  EXPECT_FALSE(uf.unite(1, 0));
  EXPECT_TRUE(uf.connected(0, 1));
  EXPECT_EQ(uf.setCount(), 3u);
  EXPECT_EQ(uf.setSize(0), 2u);
}

TEST(UnionFind, TransitiveConnectivity) {
  UnionFind uf(6);
  uf.unite(0, 1);
  uf.unite(2, 3);
  uf.unite(1, 2);
  EXPECT_TRUE(uf.connected(0, 3));
  EXPECT_FALSE(uf.connected(0, 4));
  EXPECT_EQ(uf.setSize(3), 4u);
}

TEST(UnionFind, OutOfRangeThrows) {
  UnionFind uf(3);
  EXPECT_THROW(uf.find(3), std::out_of_range);
}

TEST(UnionFind, FullMergeLeavesOneSet) {
  UnionFind uf(50);
  util::Rng rng(7);
  while (uf.setCount() > 1) {
    const auto a = rng.below(50);
    const auto b = rng.below(50);
    if (a != b) uf.unite(a, b);
  }
  EXPECT_EQ(uf.setSize(0), 50u);
  for (std::size_t i = 1; i < 50; ++i) EXPECT_TRUE(uf.connected(0, i));
}

}  // namespace
}  // namespace doda::graph
