#pragma once

#include <memory>

#include "adversary/sequence_adversary.hpp"
#include "core/engine.hpp"
#include "dynagraph/interaction_sequence.hpp"

namespace doda::testing {

/// Runs `algorithm` on a fixed sequence with a count() aggregation and
/// default options; the common setup of most integration tests.
inline core::ExecutionResult runOn(core::DodaAlgorithm& algorithm,
                                   const dynagraph::InteractionSequence& seq,
                                   std::size_t node_count, core::NodeId sink,
                                   core::Time max_interactions = core::Time{1}
                                                                 << 32) {
  core::Engine engine({node_count, sink},
                      core::AggregationFunction::count());
  adversary::SequenceAdversary adv(seq);
  core::RunOptions options;
  options.max_interactions = max_interactions;
  return engine.run(algorithm, adv, options);
}

/// Shorthand interaction literal.
inline dynagraph::Interaction ix(core::NodeId u, core::NodeId v) {
  return dynagraph::Interaction(u, v);
}

}  // namespace doda::testing
